#include "support/options.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"

namespace kdr::support {

void OptionSet::add(const std::string& name, Kind kind, void* target, std::string help,
                    std::string default_value) {
    KDR_REQUIRE(!name.empty(), "OptionSet: empty option name");
    std::string env = "KDR_";
    for (char c : name) {
        env += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    for (const Opt& o : opts_) {
        KDR_REQUIRE(o.name != name, "OptionSet: duplicate option -", name);
        // Names that differ only in case collide on the uppercased KDR_*
        // key: both registrations would read the same environment variable
        // and the later one would silently win. Reject at registration.
        KDR_REQUIRE(o.env != env, "OptionSet: options -", o.name, " and -", name,
                    " collide on environment key ", env);
        // Re-binding one variable under two names makes overrides
        // order-dependent (the later flag silently wins): reject too.
        KDR_REQUIRE(o.target != target, "OptionSet: option -", name,
                    " re-registers the variable already bound to -", o.name);
    }
    opts_.push_back({name, std::move(env), std::move(help), kind, target,
                     std::move(default_value)});
}

void OptionSet::add_flag(const std::string& name, bool& target, std::string help) {
    add(name, Kind::Flag, &target, std::move(help), target ? "1" : "0");
}
void OptionSet::add_int(const std::string& name, int& target, std::string help) {
    add(name, Kind::Int32, &target, std::move(help), std::to_string(target));
}
void OptionSet::add_int(const std::string& name, std::int64_t& target, std::string help) {
    add(name, Kind::Int, &target, std::move(help), std::to_string(target));
}
void OptionSet::add_uint(const std::string& name, std::uint64_t& target, std::string help) {
    add(name, Kind::Uint, &target, std::move(help), std::to_string(target));
}
void OptionSet::add_double(const std::string& name, double& target, std::string help) {
    add(name, Kind::Double, &target, std::move(help), std::to_string(target));
}
void OptionSet::add_string(const std::string& name, std::string& target, std::string help) {
    add(name, Kind::String, &target, std::move(help), target);
}

void OptionSet::set_from(const Opt& o, const std::string& value, const char* source) {
    switch (o.kind) {
        case Kind::Flag:
            *static_cast<bool*>(o.target) = !value.empty() && value != "0";
            break;
        case Kind::Int32:
        case Kind::Int: {
            char* end = nullptr;
            const std::int64_t v = std::strtoll(value.c_str(), &end, 10);
            KDR_REQUIRE(end != value.c_str() && *end == '\0', source, " ", o.name,
                        " expects an integer, got '", value, "'");
            if (o.kind == Kind::Int32) {
                *static_cast<int*>(o.target) = static_cast<int>(v);
            } else {
                *static_cast<std::int64_t*>(o.target) = v;
            }
            break;
        }
        case Kind::Uint: {
            char* end = nullptr;
            const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
            KDR_REQUIRE(end != value.c_str() && *end == '\0' && value.find('-') ==
                            std::string::npos,
                        source, " ", o.name, " expects a non-negative integer, got '", value,
                        "'");
            *static_cast<std::uint64_t*>(o.target) = v;
            break;
        }
        case Kind::Double: {
            char* end = nullptr;
            const double v = std::strtod(value.c_str(), &end);
            KDR_REQUIRE(end != value.c_str() && *end == '\0', source, " ", o.name,
                        " expects a number, got '", value, "'");
            *static_cast<double*>(o.target) = v;
            break;
        }
        case Kind::String:
            *static_cast<std::string*>(o.target) = value;
            break;
    }
}

void OptionSet::apply_env() const {
    for (const Opt& o : opts_) {
        if (const char* e = std::getenv(o.env.c_str()); e != nullptr) {
            set_from(o, e, "environment variable");
        }
    }
}

void OptionSet::apply_cli(const CliArgs& args) const {
    for (const Opt& o : opts_) {
        if (args.has(o.name)) set_from(o, args.get_string(o.name, ""), "flag -");
    }
}

std::string OptionSet::help() const {
    std::string out;
    for (const Opt& o : opts_) {
        out += "  -" + o.name + " (env " + o.env + ", default " + o.default_value + ")\n      " +
               o.help + "\n";
    }
    return out;
}

} // namespace kdr::support
