#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace kdr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    KDR_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    KDR_REQUIRE(cells.size() == headers_.size(), "Table: row arity ", cells.size(),
                " != header arity ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string Table::eng(double v, int precision) {
    static constexpr const char* suffixes[] = {"", "k", "M", "G", "T"};
    int tier = 0;
    double mag = std::fabs(v);
    while (mag >= 1000.0 && tier < 4) {
        mag /= 1000.0;
        v /= 1000.0;
        ++tier;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v << suffixes[tier];
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
        os << "\n";
    };
    auto print_rule = [&]() {
        os << "+";
        for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
}

} // namespace kdr
