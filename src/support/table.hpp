#pragma once

/// \file table.hpp
/// Aligned ASCII table printer. The benchmark harnesses use this to emit the
/// same rows/series the paper's figures report, in a grep-friendly layout.

#include <ostream>
#include <string>
#include <vector>

namespace kdr {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Append one row; must have the same arity as the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format a double with fixed precision.
    static std::string num(double v, int precision = 3);
    /// Convenience: format with SI-style engineering suffix (k, M, G).
    static std::string eng(double v, int precision = 2);

    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace kdr
