#pragma once

/// \file cli.hpp
/// Minimal `-key value` command-line parser matching the style of the paper's
/// `BenchmarkStencil` driver (`-dim 2 -solver 1 -nx 4096 ...`). Also accepts
/// `-key=value` (the KDR_* env spelling); a repeated flag overwrites, so the
/// last occurrence wins. Boolean flags treat absent, empty, and "0" as false,
/// matching OptionSet's env parsing exactly.

#include <cstdint>
#include <map>
#include <string>

namespace kdr {

class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    [[nodiscard]] bool get_flag(const std::string& key) const;

private:
    std::map<std::string, std::string> values_;
};

} // namespace kdr
