#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component of the reproduction (right-hand sides, the
/// Figure 10 background-load process, property-test inputs) draws from these
/// generators so experiments are bit-reproducible across runs.

#include <cstdint>
#include <limits>

namespace kdr {

/// SplitMix64 — used to expand a single user seed into generator state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator. Fast, high quality, tiny state.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x1234ABCDULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // UniformRandomBitGenerator interface so <random> distributions work too.
    std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n). Unbiased via rejection.
    std::uint64_t uniform_index(std::uint64_t n) noexcept {
        if (n == 0) return 0;
        const std::uint64_t threshold = (0 - n) % n; // 2^64 mod n
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % n;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace kdr
