#include "support/cli.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace kdr {

namespace {

/// A token serves as a flag's value if it does not look like a flag itself —
/// or if it parses fully as a number, so `-shift -1.5` and `-seed -1` bind
/// the negative number instead of treating it as a second bare flag.
bool is_flag_value(const char* tok) {
    if (tok[0] != '-') return true;
    char* end = nullptr;
    (void)std::strtod(tok, &end);
    return end != tok && *end == '\0';
}

} // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.size() < 2 || arg[0] != '-') continue;
        std::string key = arg.substr(1);
        // `-key=value` binds the inline value (the KDR_KEY=value env syntax,
        // accepted on the command line too). A leading '=' is not a key.
        if (const std::size_t eq = key.find('='); eq != std::string::npos) {
            if (eq == 0) continue;
            values_[key.substr(0, eq)] = key.substr(eq + 1);
            continue;
        }
        // A repeated flag overwrites: the last occurrence wins, so trailing
        // overrides compose (precedence across sources — CLI over KDR_* env
        // over defaults — is decided in support::OptionSet::parse).
        if (i + 1 < argc && is_flag_value(argv[i + 1])) {
            values_[key] = argv[++i];
        } else {
            values_[key] = "1"; // bare flag
        }
    }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) != 0; }

std::string CliArgs::get_string(const std::string& key, std::string fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    KDR_REQUIRE(end && *end == '\0', "flag -", key, " expects an integer, got '", it->second, "'");
    return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    KDR_REQUIRE(end && *end == '\0', "flag -", key, " expects a number, got '", it->second, "'");
    return v;
}

bool CliArgs::get_flag(const std::string& key) const {
    // Same falsy set as OptionSet's env-side flag parsing: absent, empty
    // (`-flag=`), and "0" are false — the two surfaces must agree.
    auto it = values_.find(key);
    return it != values_.end() && !it->second.empty() && it->second != "0";
}

} // namespace kdr
