#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses: running moments,
/// geometric means (the paper reports geometric-mean speedups), and the
/// min-of-k reduction the paper's artifact description prescribes.

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace kdr {

/// Streaming mean / variance (Welford) plus min/max.
class RunningStat {
public:
    void add(double x) noexcept {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_ || n_ == 1) min_ = x;
        if (x > max_ || n_ == 1) max_ = x;
    }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Geometric mean of strictly positive values.
[[nodiscard]] inline double geometric_mean(const std::vector<double>& xs) {
    KDR_REQUIRE(!xs.empty(), "geometric_mean: empty input");
    double log_sum = 0.0;
    for (double x : xs) {
        KDR_REQUIRE(x > 0.0, "geometric_mean: nonpositive value ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Minimum over repeated measurements (the paper reports min of 3 runs).
[[nodiscard]] inline double min_of(const std::vector<double>& xs) {
    KDR_REQUIRE(!xs.empty(), "min_of: empty input");
    double m = xs.front();
    for (double x : xs)
        if (x < m) m = x;
    return m;
}

} // namespace kdr
