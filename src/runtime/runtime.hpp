#pragma once

/// \file runtime.hpp
/// The task runtime: Legion-flavored semantics on the simulated cluster.
///
/// Programming model (mirrors what LegionSolvers uses from Legion, paper §5):
///  * applications create logical regions with typed fields;
///  * work is expressed as tasks carrying region requirements
///    (region, field, subset, privilege) and a roofline cost;
///  * the runtime derives task dependences from requirement conflicts,
///    inserts transfer events for remote reads, and schedules each task on
///    the processor a pluggable Mapper selects;
///  * `begin_trace`/`end_trace` memoize a repeated launch sequence (Legion's
///    dynamic tracing [Lee 2018]): the first replay verifies signatures and
///    captures each launch's resolved dependence schedule, and every replay
///    after that skips dependence analysis entirely, resolving predecessors
///    from the captured event edges at the reduced traced overhead.
///
/// Execution is *eager-functional, lazy-temporal*: task bodies run for real
/// at submission (program order is always a valid serialization of the task
/// DAG), while start/finish times are computed against per-resource virtual
/// timelines. Futures therefore carry both a value and a ready time.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/accessor.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "partition/partition.hpp"
#include "runtime/exchange.hpp"
#include "runtime/mapper.hpp"
#include "runtime/region.hpp"
#include "runtime/types.hpp"
#include "runtime/validation.hpp"
#include "simcluster/cluster.hpp"

namespace kdr::rt {

class Runtime;

/// Handed to task bodies: typed access to region fields plus scalar results.
class TaskContext {
public:
    TaskContext(Runtime& rt, const TaskLaunch& launch) : rt_(rt), launch_(launch) {}

    /// Requirement-scoped accessor — the preferred kernel access path. The
    /// view spans the requirement's whole field; in validation mode it
    /// carries a hook that checks every element access against the declared
    /// subset and privilege (PrivilegeError on violation), in release mode
    /// it is a raw pointer + length with zero per-access overhead. `T` may
    /// be const-qualified (`accessor<const double>` for read views).
    template <typename T>
    [[nodiscard]] VecView<T> accessor(std::uint32_t req_index);

    /// Whole-field span; the task is expected to touch only its requirement
    /// subsets (kernels take the subset explicitly). Validation mode treats
    /// this as a conservative whole-subset touch of every declared
    /// requirement on (r, f) — element-level checking needs `accessor` — and
    /// rejects undeclared (region, field) pairs.
    template <typename T>
    [[nodiscard]] std::span<T> field(RegionId r, FieldId f);

    /// Publish this task's scalar result (dot products, norms).
    void set_scalar(double v) noexcept { scalar_ = v; }
    [[nodiscard]] std::optional<double> scalar() const noexcept { return scalar_; }

    /// Publish one entry of a multi-scalar result (fused Gram kernels emit
    /// one partial per inner-product pair from a single launch). Ordered:
    /// the k-th push is the k-th scalar. Retrieved by the planner through
    /// Runtime::take_task_scalars() right after the launch returns.
    void push_scalar(double v) { scalars_.push_back(v); }
    [[nodiscard]] std::vector<double> take_scalars() noexcept { return std::move(scalars_); }

    [[nodiscard]] const TaskLaunch& launch() const noexcept { return launch_; }

private:
    Runtime& rt_;
    const TaskLaunch& launch_;
    std::optional<double> scalar_;
    std::vector<double> scalars_;
};

struct RuntimeOptions {
    bool materialize = true; ///< false = phantom fields, timing-only
    bool profiling = false;  ///< record per-task virtual-time profiles
    /// Event profiler (obs::Profiler): record every task execution, transfer
    /// message, handshake, retry, and analysis-pipeline interval with
    /// dependence edges, for Chrome-trace export and critical-path
    /// attribution. Observation-only — virtual times and numerics are
    /// bitwise unaffected. Also enabled by a non-empty KDR_PROFILE
    /// environment variable (whose value names the trace output file for
    /// CommonOptions-based binaries).
    bool profile = false;
    /// Replay traces from the captured dependence schedule (skipping the
    /// analysis pipeline) once a verification pass has captured it. false =
    /// verify-only replay: signatures are checked and the traced overhead is
    /// charged, but every launch still runs full dependence analysis — the
    /// pre-capture behavior, kept for ablations.
    bool trace_fast_path = true;
    /// Retry budget for transiently failed task attempts (fault injection):
    /// a task may fail up to this many times and still succeed on a later
    /// attempt; one more failure raises TaskFailedError. 0 = no retries.
    int max_task_retries = 3;
    /// Validation mode: every element access through a task accessor is
    /// checked against the declared subset and privilege (PrivilegeError on
    /// violation), actual touched sets feed a shadow race detector, and
    /// declared-but-untouched subsets are linted as over-declaration. Traced
    /// launches always run full dependence analysis (the trace fast path
    /// would skip the resolution the detector audits). Also enabled by the
    /// KDR_VALIDATE environment variable.
    bool validate = false;
    /// Record contract violations as warnings + counters instead of
    /// throwing, letting the run continue so the race detector can observe
    /// the downstream fallout of an under-declaration. Implies validate.
    bool validate_warn_only = false;
};

class Runtime {
public:
    using Options = RuntimeOptions;

    explicit Runtime(sim::MachineDesc machine, Options options = {});

    // ------------------------------------------------------------ regions
    RegionId create_region(IndexSpace space, std::string name);
    [[nodiscard]] Region& region(RegionId r);
    [[nodiscard]] const Region& region(RegionId r) const;

    template <typename T>
    FieldId add_field(RegionId r, std::string name) {
        ++structure_epoch_;
        return region(r).add_field(std::move(name), sizeof(T), options_.materialize,
                                   typeid(T));
    }

    /// Direct host access for problem setup and result inspection
    /// (functional mode only).
    template <typename T>
    [[nodiscard]] std::span<T> field_data(RegionId r, FieldId f) {
        return region(r).field(f).as<T>();
    }

    // ---------------------------------------------------------- placement
    /// Replace the home map of (region, field).
    void set_home(RegionId r, FieldId f, std::vector<HomePiece> pieces);

    /// Home map from a partition and a color → node assignment.
    void set_home_from_partition(RegionId r, FieldId f, const Partition& part,
                                 const std::vector<int>& node_of_color);

    /// Migrate one piece to a new node (dynamic load balancing). Charges the
    /// transfer and conservatively invalidates caches of the moved range.
    void move_home(RegionId r, FieldId f, const IntervalSet& piece, int new_node);

    /// Node currently homing the majority of `piece` (diagnostics).
    [[nodiscard]] int home_node(RegionId r, FieldId f, const IntervalSet& piece) const;

    // ------------------------------------------------------ exchange plans
    /// Install the halo-exchange plan for (region, field): plan messages are
    /// issued as single coalesced transfers — eagerly at producer-commit
    /// time when the plan says so, otherwise lazily at consumer-ready time —
    /// in place of per-home-piece on-demand fetches. Replaces any previous
    /// plan. Plans are timing-only; numerics are unaffected.
    void set_exchange_plan(RegionId r, FieldId f, ExchangePlan plan);
    /// Drop the plan for (region, field); reads fall back to per-piece
    /// fetches. No-op if none is installed. Also done implicitly when
    /// set_home/move_home changes the placement the plan was built from.
    void clear_exchange_plan(RegionId r, FieldId f);
    [[nodiscard]] bool has_exchange_plan(RegionId r, FieldId f) const;

    // ------------------------------------------------------------- mapper
    void set_mapper(std::unique_ptr<Mapper> mapper);
    [[nodiscard]] Mapper& mapper() noexcept { return *mapper_; }

    // ------------------------------------------------------------ tracing
    /// Begin a (possibly previously recorded) trace. Launches inside a
    /// replayed trace are charged the traced launch overhead. Trace id 0 is
    /// reserved (it aliases the "no active trace" sentinel) and rejected.
    void begin_trace(std::uint64_t trace_id);
    void end_trace();

    /// Abandon the active trace instance without completing it: a partial
    /// recording is discarded, a partial capture keeps its verified prefix
    /// but no cached schedule. Safe to call with no trace active (no-op) and
    /// from unwinding destructors.
    void cancel_trace() noexcept;

    [[nodiscard]] bool trace_active() const noexcept { return trace_active_; }
    [[nodiscard]] bool replaying() const noexcept;

    /// Fresh trace id for internal users (solvers). Allocated ids start at
    /// 2^32 so they never collide with application-chosen small ids.
    [[nodiscard]] std::uint64_t allocate_trace_id() noexcept { return next_trace_id_++; }

    /// Mark a trace as long-lived: staleness (a structure/quiet epoch bump or
    /// a different inter-instance gap, e.g. another job's setup ran in
    /// between) downgrades the next instance to a signature-verified full
    /// re-analysis instead of discarding the captured schedule; a complete
    /// verified instance re-anchors the epochs so back-to-back instances go
    /// fast again. This is what lets structurally-identical service jobs
    /// replay each other's schedules across unrelated interleaved work.
    void pin_trace(std::uint64_t trace_id) { traces_[trace_id].pinned = true; }

    /// True once `trace_id` holds a captured schedule (i.e. a later instance
    /// can replay without dependence analysis). The service layer's
    /// trace-cache hit probe.
    [[nodiscard]] bool trace_captured(std::uint64_t trace_id) const {
        const auto it = traces_.find(trace_id);
        return it != traces_.end() && it->second.captured;
    }

    // ---------------------------------------------------------- launching
    FutureScalar launch(TaskLaunch launch);

    /// Virtual time at which all submitted work completes.
    [[nodiscard]] double current_time() const { return cluster_.horizon(); }

    // -------------------------------------------------------- inspection
    [[nodiscard]] sim::SimCluster& cluster() noexcept { return cluster_; }
    [[nodiscard]] const sim::MachineDesc& machine() const noexcept {
        return cluster_.machine();
    }
    [[nodiscard]] bool functional() const noexcept { return options_.materialize; }
    [[nodiscard]] std::uint64_t tasks_launched() const noexcept { return task_counter_; }
    [[nodiscard]] double transfer_bytes() const noexcept { return transfer_bytes_; }
    [[nodiscard]] std::uint64_t transfer_count() const noexcept { return transfer_count_; }

    void set_profiling(bool on) { options_.profiling = on; }
    [[nodiscard]] std::vector<TaskProfile> take_profiles();

    /// The event profiler (null unless RuntimeOptions::profile or
    /// KDR_PROFILE enabled it at construction). Owned by the runtime and
    /// shared with the cluster's instrumentation hooks.
    [[nodiscard]] obs::Profiler* profiler() noexcept { return profiler_.get(); }
    [[nodiscard]] const obs::Profiler* profiler() const noexcept { return profiler_.get(); }

    // -------------------------------------------------------- validation
    [[nodiscard]] bool validating() const noexcept { return validator_ != nullptr; }
    /// The validation engine (null when validation is off). Exposes the
    /// violation/race/lint tallies and diagnostics for tests and reports.
    [[nodiscard]] Validator* validator() noexcept { return validator_.get(); }
    /// Element-access hook for requirement `req_index` of the task whose
    /// body is currently executing; null when validation is off.
    [[nodiscard]] AccessHook* validation_hook(std::uint32_t req_index) noexcept {
        return validator_ != nullptr ? validator_->hook(req_index) : nullptr;
    }
    /// Whole-field ctx.field bookkeeping in validation mode (no-op otherwise).
    void note_unscoped_field_access(RegionId r, FieldId f) {
        if (validator_ != nullptr) validator_->note_unscoped_field(r, f);
    }

    // ------------------------------------------------------- observability
    /// Metrics registry every layer reports into: task launches (per task
    /// name and proc kind), dependence-analysis stall seconds, transfer
    /// bytes/count per node pair, trace record/replay counts, migrations.
    [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const obs::Registry& metrics() const noexcept { return metrics_; }

    /// Solver-phase spans, recorded against this runtime's virtual clock.
    [[nodiscard]] obs::SpanTracker& spans() noexcept { return spans_; }
    [[nodiscard]] const obs::SpanTracker& spans() const noexcept { return spans_; }

    // ------------------------------------------------------- collectives
    /// Blocking-allreduce semantics (MPI_Allreduce): every task launched
    /// after the collective waits for its completion, not just consumers of
    /// the reduced scalar. The planner raises the front at each reduction's
    /// completion time when PlannerOptions::allreduce is `blocking`; the
    /// default nonblocking mode never raises it, so scalars stay plain
    /// futures. The front rides on the scalar-dependence path and is NOT
    /// part of launch signatures — switching modes re-times a run without
    /// perturbing traces.
    void raise_collective_front(double done) noexcept {
        if (done > collective_front_) collective_front_ = done;
    }
    [[nodiscard]] double collective_front() const noexcept { return collective_front_; }

    /// Multi-scalar results of the most recent launch (TaskContext::
    /// push_scalar), consumed exactly once by the planner op that issued it.
    /// Empty in timing-only mode and for single-scalar tasks.
    [[nodiscard]] std::vector<double> take_task_scalars() noexcept {
        return std::move(task_scalars_);
    }

    /// Aggregate everything observed so far (profiles, metrics, spans, the
    /// cluster's busy timelines) into a structured report. Task-kind rows
    /// require profiling to have been enabled for the whole run.
    /// `status` is the solver-classified outcome (core::to_string of a
    /// SolveStatus); fault/retry/rollback/checkpoint counters and NIC fault
    /// tallies are folded in from the metrics registry and the fault model.
    /// Everything build_solve_report reads, frozen at a point in time.
    /// Counters, histograms, busy timelines, profiles, and spans on one
    /// runtime all accumulate across solves; a report built against a
    /// baseline covers only the work after capture_baseline(), so the second
    /// solve in a process stops attributing the first solve's work to itself.
    struct SolveBaseline {
        obs::RegistrySnapshot metrics;
        double horizon = 0.0;
        std::uint64_t tasks = 0;
        double transfer_bytes = 0.0;
        std::uint64_t transfer_count = 0;
        std::size_t profiles = 0; ///< profiles recorded so far
        std::size_t spans = 0;    ///< completed spans so far
        std::vector<double> node_busy; ///< per node: CPU + all GPUs
        std::vector<double> nic_busy;  ///< per node: send + recv
        /// (bytes, count) per src-major node-pair slot.
        std::vector<std::pair<double, double>> transfer_pairs;
        std::uint64_t nic_degraded = 0;
        std::uint64_t nic_retransmits = 0;
        std::uint64_t tasks_checked = 0;
        std::uint64_t violations = 0;
        std::uint64_t race_pairs = 0;
        std::uint64_t overdeclared = 0;
    };
    [[nodiscard]] SolveBaseline capture_baseline() const;

    /// With `since`, every cumulative surface is reported as a delta against
    /// the baseline (critical-path attribution stays whole-run: the event
    /// DAG has no per-interval cut).
    [[nodiscard]] obs::SolveReport build_solve_report(
        std::vector<obs::ConvergenceSample> convergence = {},
        std::string status = "unknown", const SolveBaseline* since = nullptr) const;

private:
    /// Requirement index marking accesses that did not come from a task
    /// launch (home migrations, setup fences) — never replayed, so trace
    /// capture folds their finish time into a constant instead of an edge.
    static constexpr std::uint32_t kExternalAccess = 0xffffffffu;

    struct Access {
        TaskSeq task = 0;
        double finish = 0.0;
        IntervalSet subset;
        ReductionOp redop = kNoReduction;
        std::uint32_t req_index = kExternalAccess;
    };
    struct FieldState {
        std::vector<Access> writers;
        std::vector<Access> readers;
        std::vector<Access> reducers;
    };

    /// FieldId is 32-bit, so the region id must shift past all 32 field
    /// bits — a 16-bit shift collides (region 1, field 0) with
    /// (region 0, field 65536).
    [[nodiscard]] static std::uint64_t field_key(RegionId r, FieldId f) {
        return (r << 32) | f;
    }

    /// Dependence time of a requirement. When `contributors` is non-null
    /// (trace capture), every access that bounded the result is collected so
    /// the dependence can be memoized as event edges.
    double analyze_requirement(const RegionReq& req,
                               std::vector<const Access*>* contributors = nullptr);
    void commit_requirement(const RegionReq& req, TaskSeq seq, double finish,
                            std::uint32_t req_index);

    /// Transfers needed to satisfy a read; returns latest arrival. Consults
    /// the destination's cached copies first, then the field's exchange plan
    /// (whole plan messages, coalesced), then falls back to per-piece
    /// fetches for anything no plan message covers.
    double issue_read_transfers(const RegionReq& req, int dst_node, double ready);

    /// Producer-side half of an eager exchange plan: fold a committed write
    /// into the per-message pending sets and fire every message whose
    /// elements are now fully (re)written, overlapping the transfer with
    /// whatever runs next. `finish` must include the write-back arrival so
    /// the pushed copy leaves from home.
    void eager_exchange(const RegionReq& req, double finish);

    /// Write-backs for writes landing off-home; returns latest arrival.
    double issue_write_backs(const RegionReq& req, int src_node, double finish);

    static void replace_or_append(std::vector<Access>& list, Access access);

    /// Charge a transfer to the aggregate totals and the per-node-pair
    /// metrics (counter handles are cached; the registry lookup happens once
    /// per pair).
    void record_transfer(int src_node, int dst_node, double bytes);

    /// Cached per-(task name, proc kind) launch counter.
    obs::Counter& launch_counter(const std::string& name, sim::ProcKind kind);

    /// Event-profiler lane of a processor (cpu lane or the gpu's own lane).
    [[nodiscard]] int profiler_lane(sim::ProcId proc) const {
        return proc.kind == sim::ProcKind::GPU ? profiler_->lane_gpu(proc.index)
                                               : profiler_->lane_cpu();
    }

    Options options_;
    sim::SimCluster cluster_;
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<Validator> validator_;
    std::unique_ptr<obs::Profiler> profiler_;
    /// Kernel event id of each committed launch, indexed seq - 1 (profiler
    /// runs only). Maps dependence-analysis contributors and replayed trace
    /// edges back to event-DAG predecessors.
    std::vector<obs::EventId> task_event_ids_;

    std::vector<std::unique_ptr<Region>> regions_;
    std::unordered_map<std::uint64_t, FieldState> field_states_;

    TaskSeq task_counter_ = 0;
    double transfer_bytes_ = 0.0;
    std::uint64_t transfer_count_ = 0;
    std::vector<TaskProfile> profiles_;

    // Observability. Hot-path counters are resolved once and cached as
    // pointers into metrics_ (registry references are stable).
    obs::Registry metrics_;
    obs::SpanTracker spans_;
    std::unordered_map<std::string, obs::Counter*> launch_counters_;
    struct TransferCounters {
        obs::Counter* bytes = nullptr;
        obs::Counter* count = nullptr;
    };
    std::vector<TransferCounters> transfer_counters_; ///< nodes x nodes, lazy
    obs::Counter* analysis_stall_ctr_ = nullptr;
    obs::Counter* allreduce_wait_ctr_ = nullptr;
    double collective_front_ = 0.0; ///< see raise_collective_front()
    std::vector<double> task_scalars_; ///< see take_task_scalars()
    obs::Counter* task_fault_ctr_ = nullptr;
    obs::Counter* task_retry_ctr_ = nullptr;
    obs::Counter* retry_exhausted_ctr_ = nullptr;
    obs::Counter* rollback_ctr_ = nullptr;
    obs::Counter* straggler_ctr_ = nullptr;
    obs::Counter* trace_record_ctr_ = nullptr;
    obs::Counter* trace_replay_ctr_ = nullptr;
    obs::Counter* trace_skip_ctr_ = nullptr;
    obs::Counter* trace_invalid_ctr_ = nullptr;
    obs::Counter* trace_pin_verify_ctr_ = nullptr;
    obs::Counter* migration_ctr_ = nullptr;
    obs::Counter* exchange_plans_ctr_ = nullptr;
    obs::Counter* coalesced_msg_ctr_ = nullptr;
    obs::Counter* overlap_ctr_ = nullptr;
    obs::Histogram* task_duration_hist_ = nullptr;

    // Exchange plans. Per plan message, the producer-side state: which of
    // the message's elements the current write round has committed and when
    // the latest of those writes (incl. write-back) lands at home.
    struct ExchangeMsgState {
        IntervalSet pending;
        double ready = 0.0;
    };
    struct ExchangeState {
        ExchangePlan plan;
        std::vector<ExchangeMsgState> msgs; ///< parallel to plan.messages
    };
    std::unordered_map<std::uint64_t, ExchangeState> exchanges_;

    // Tracing. A trace goes through three phases (DESIGN.md §5):
    //   record  — first instance: signatures are memoized, full dynamic
    //             analysis runs at the dynamic launch overhead;
    //   capture — next instance: signatures verify, analysis still runs
    //             (charged at the traced overhead) and each launch's resolved
    //             dependence schedule is captured as event edges;
    //   fast    — later instances: signatures verify and the captured
    //             schedule replays; dependence analysis is skipped entirely.
    // Divergence is not an error: the trace keeps its verified prefix and
    // flips back to recording, so a changed loop re-memoizes transparently.
    enum class TraceInstanceMode : std::uint8_t { None, Record, Replay, Capture, Fast };

    /// One captured dependence edge: the producing launch addressed relative
    /// to the consumer (`delta` launches earlier) and which of its
    /// requirements produced the event. Relative addressing is what lets one
    /// recipe replay at any absolute position in the launch stream.
    struct TraceEdge {
        std::uint64_t delta = 0;
        std::uint32_t req = 0;
    };
    struct ReqRecipe {
        /// Dependences on events that never re-execute (setup tasks, home
        /// data readiness, migrations) fold into one capture-time constant.
        /// Virtual time is monotone, so a stale constant can only be a slack
        /// lower bound — it never delays a replayed launch incorrectly.
        double external_dep = 0.0;
        std::vector<TraceEdge> edges;
    };
    struct LaunchRecipe {
        std::vector<ReqRecipe> reqs;
    };
    struct TraceState {
        std::vector<std::uint64_t> signatures;
        std::vector<LaunchRecipe> recipes; ///< parallel to signatures once captured
        bool recorded = false;
        bool captured = false;
        bool pinned = false; ///< survive staleness via re-verify (pin_trace)
        TaskSeq record_base = 0;     ///< last seq before the recording instance
        TaskSeq end_seq = 0;         ///< seq when the last instance ended
        std::uint64_t prev_gap = 0;  ///< launches between instances at capture
        std::uint64_t struct_epoch = 0;
        std::uint64_t quiet_epoch = 0;
    };

    /// Ring of every launch's per-requirement effective finish times, so a
    /// replayed edge (delta, req) resolves to the producer's *current-run*
    /// finish. Sized (power of two) at end-of-recording to span two full
    /// trace instances plus slack.
    struct CommitRecord {
        TaskSeq seq = 0; ///< 0 = empty slot (task seqs start at 1)
        std::vector<double> req_finish;
    };
    void ring_store(TaskSeq seq, const std::vector<double>& finishes);
    void ensure_ring_capacity(std::size_t needed);

    /// Build the recipe for one requirement from the accesses that bounded
    /// its dependence time during a capture instance.
    void capture_requirement(LaunchRecipe& recipe, const RegionReq& req, TaskSeq seq,
                             const TraceState& t,
                             const std::vector<const Access*>& contributors);

    /// Drop a replay that diverged or came up short: keep the verified
    /// signature prefix, discard the cached schedule.
    void invalidate_replay(TraceState& t);

    /// Execute one task under the active fault model: bounded retries with
    /// wasted-time charging for failed attempts. Returns the finish time of
    /// the successful attempt; throws TaskFailedError when the budget runs
    /// out. Called in place of the plain cluster exec.
    double exec_with_faults(const TaskLaunch& launch, sim::ProcId proc, double ready,
                            sim::FaultModel& fm);

    /// A fault inside a traced instance cancels the cached schedule back to
    /// the verified signature prefix (capture and fast replay only — the
    /// remainder of the instance runs full dependence analysis).
    void abort_trace_schedule();

    std::unordered_map<std::uint64_t, TraceState> traces_;
    std::uint64_t active_trace_ = 0;
    bool trace_active_ = false;
    TraceInstanceMode trace_mode_ = TraceInstanceMode::None;
    std::size_t trace_cursor_ = 0;
    TaskSeq trace_begin_seq_ = 0;
    std::uint64_t trace_begin_struct_epoch_ = 0;
    std::uint64_t next_trace_id_ = std::uint64_t{1} << 32;
    std::vector<CommitRecord> commit_ring_;

    /// Bumped when the region/field/home structure changes; captured
    /// schedules from an older epoch are invalid.
    std::uint64_t structure_epoch_ = 0;
    /// Bumped by every untraced launch; untraced work interleaved between
    /// trace instances may change the dependence structure, so fast replay
    /// requires a quiet gap identical to the one seen at capture.
    std::uint64_t quiet_epoch_ = 0;
};

template <typename T>
std::span<T> TaskContext::field(RegionId r, FieldId f) {
    rt_.note_unscoped_field_access(r, f);
    return rt_.field_data<T>(r, f);
}

template <typename T>
VecView<T> TaskContext::accessor(std::uint32_t req_index) {
    if (req_index >= launch_.requirements.size()) {
        throw PrivilegeError("task '" + launch_.name + "' requests an accessor for requirement " +
                             std::to_string(req_index) + " but declares only " +
                             std::to_string(launch_.requirements.size()) + " requirements");
    }
    const RegionReq& rq = launch_.requirements[req_index];
    const auto span = rt_.field_data<std::remove_const_t<T>>(rq.region, rq.field);
    return VecView<T>(span.data(), span.size(), rt_.validation_hook(req_index));
}

} // namespace kdr::rt
