#include "runtime/exchange.hpp"

#include <map>

namespace kdr::rt {

ExchangePlan build_exchange_plan(const std::vector<HomePiece>& home,
                                 const std::vector<ExchangeConsumer>& consumers,
                                 bool coalesce, bool eager) {
    // Per destination node, the union of everything its pieces read; a node
    // running several pieces still receives each element once.
    std::map<int, IntervalSet> needs;
    for (const ExchangeConsumer& c : consumers) {
        if (c.second.empty()) continue;
        IntervalSet& need = needs[c.first];
        need = need.set_union(c.second);
    }

    ExchangePlan plan;
    plan.eager = eager;
    std::map<std::pair<int, int>, IntervalSet> pair_elems;
    for (const auto& [dst, need] : needs) {
        for (const HomePiece& h : home) {
            if (h.node == dst) continue;
            const IntervalSet part = need.set_intersection(h.subset);
            if (part.empty()) continue;
            if (coalesce) {
                IntervalSet& elems = pair_elems[{h.node, dst}];
                elems = elems.set_union(part);
            } else {
                plan.messages.push_back({h.node, dst, part});
            }
        }
    }
    for (auto& [key, elems] : pair_elems) {
        plan.messages.push_back({key.first, key.second, std::move(elems)});
    }
    return plan;
}

} // namespace kdr::rt
