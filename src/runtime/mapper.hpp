#pragma once

/// \file mapper.hpp
/// Mappers decide where tasks run (paper §5/§6.3: Legion's mapper interface
/// is what enables the dynamic load-balancing experiment — the assignment of
/// work to processors is a policy object, not baked into the library).

#include "runtime/types.hpp"
#include "simcluster/machine.hpp"

namespace kdr::rt {

class Mapper {
public:
    virtual ~Mapper() = default;

    /// Choose the processor for a task. `color` is the launch's piece index
    /// (index-launch point), the primary affinity hint.
    [[nodiscard]] virtual sim::ProcId select_processor(const TaskLaunch& launch,
                                                       const sim::MachineDesc& machine) = 0;
};

/// Default mapper: piece colors round-robin over all processors of the
/// requested kind, so piece c always lands on the same processor — the
/// owner-computes convention the planner's canonical partitions assume.
class RoundRobinMapper final : public Mapper {
public:
    [[nodiscard]] sim::ProcId select_processor(const TaskLaunch& launch,
                                               const sim::MachineDesc& machine) override {
        if (launch.proc_kind == sim::ProcKind::GPU && machine.gpus_per_node > 0) {
            const int total = machine.total_gpus();
            const int g = static_cast<int>(launch.color % total);
            return {g / machine.gpus_per_node, sim::ProcKind::GPU, g % machine.gpus_per_node};
        }
        const int n = static_cast<int>(launch.color % machine.nodes);
        return {n, sim::ProcKind::CPU, 0};
    }
};

} // namespace kdr::rt
