#pragma once

/// \file validation.hpp
/// Validation mode: privilege-checked accessors and a shadow race detector.
///
/// Everything the runtime computes — dependences, transfers, trace replays,
/// multi-operator interference — trusts that a task touches exactly the
/// (region, field, subset, privilege) it declared. Validation mode checks
/// that contract at element granularity:
///
///  * every access through a `TaskContext::accessor` view is bounds-checked
///    against the declared subset and privilege (`PrivilegeError` on
///    violation, naming the task, requirement, and offending index);
///  * the *actual* touched set of every requirement is recorded, and a
///    shadow race detector flags conflicting actual accesses between tasks
///    with no DAG ordering path (under-declaration the dependence analysis
///    could not see);
///  * declared-but-never-touched elements are reported as over-declaration
///    lint (inflated transfers and false dependences).
///
/// Counters land in the runtime's metrics registry as
/// `privilege_violations`, `race_pairs`, and `overdeclared_reqs`.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geometry/accessor.hpp"
#include "geometry/interval_set.hpp"
#include "obs/registry.hpp"
#include "runtime/types.hpp"
#include "support/error.hpp"

namespace kdr::rt {

class Runtime;
class Validator;

/// Raised (in strict validation mode) when a task body breaks its declared
/// access contract: wrong privilege, outside the declared subset, or an
/// undeclared (region, field).
class PrivilegeError : public Error {
public:
    explicit PrivilegeError(const std::string& what) : Error(what) {}
};

/// Per-(task, requirement) element-access checker. Installed as the
/// `AccessHook` of the views a validating `TaskContext::accessor` hands out;
/// records the actual touched set as it checks.
class ReqCheck final : public AccessHook {
public:
    ReqCheck(Validator& v, const TaskLaunch& launch, std::uint32_t req_index,
             gidx field_size);

    void on_read(gidx i) override;
    void on_write(gidx i) override;
    void on_rmw(gidx i) override;

    /// Conservative escape hatch for whole-field `ctx.field` access: marks
    /// the entire declared subset as touched (no element-level checking).
    void note_whole_subset();

    [[nodiscard]] bool used() const noexcept { return used_; }
    [[nodiscard]] std::uint32_t req_index() const noexcept { return req_; }
    /// The actual touched set, coalesced.
    [[nodiscard]] IntervalSet touched() const;

private:
    void check_element(gidx i, const char* verb);
    void record(gidx i);
    [[nodiscard]] bool already_touched(gidx i) const;
    void compact();

    Validator& v_;
    const TaskLaunch& launch_;
    std::uint32_t req_;
    gidx field_size_;
    bool used_ = false;

    // Touched-set accumulator: a current run (kernels sweep intervals), a
    // small buffer of closed runs, and a compacted IntervalSet the buffer
    // periodically folds into so membership queries stay cheap.
    Interval cur_{0, 0};
    bool has_cur_ = false;
    std::vector<Interval> runs_;
    IntervalSet compacted_;
};

/// The per-runtime validation engine. Owns the task DAG (predecessor edges
/// as resolved by dependence analysis), the shadow frontier of actual
/// accesses per field, and the violation/race/lint tallies.
class Validator {
public:
    Validator(Runtime& rt, obs::Registry& metrics, bool warn_only);

    /// Record a launched task and its DAG predecessors (every access that
    /// bounded its dependence time). Called for every launch, body or not.
    void note_task(TaskSeq seq, const TaskLaunch& launch, std::vector<TaskSeq> preds);

    /// Begin checking a task body: builds one ReqCheck per requirement.
    void begin_task(TaskSeq seq, const TaskLaunch& launch);
    /// Hook for requirement `req_index` of the task currently in flight
    /// (null when no body is being checked).
    [[nodiscard]] AccessHook* hook(std::uint32_t req_index);
    /// Whole-field `ctx.field(r, f)` access from the task in flight: rejects
    /// undeclared (region, field); otherwise marks every declared requirement
    /// on that field as fully touched.
    void note_unscoped_field(RegionId r, FieldId f);
    /// Finish the task in flight: race-check its actual accesses against the
    /// shadow frontier, fold them in, and emit over-declaration lint.
    void commit_task();
    /// Drop the task in flight without committing (body threw).
    void abort_task() noexcept;

    /// A home migration republishes `piece` with a hard temporal fence; the
    /// shadow frontier forgets accesses it supersedes so they are not
    /// reported as races against later tasks.
    void note_migration(RegionId r, FieldId f, const IntervalSet& piece);

    /// Record one contract violation: bumps `privilege_violations` and either
    /// throws PrivilegeError (strict) or stores a warning (warn-only).
    void violation(const std::string& msg);

    [[nodiscard]] bool warn_only() const noexcept { return warn_only_; }
    [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
    [[nodiscard]] std::uint64_t race_pairs() const noexcept { return races_; }
    [[nodiscard]] std::uint64_t overdeclared() const noexcept { return overdeclared_; }
    [[nodiscard]] std::uint64_t tasks_checked() const noexcept { return tasks_checked_; }
    /// Human-readable diagnostics (violations in warn-only mode, races,
    /// over-declaration lint), capped to keep long runs bounded.
    [[nodiscard]] const std::vector<std::string>& warnings() const noexcept {
        return warnings_;
    }

    /// Formats "task 'name' req N (region 'r' field 'f', Privilege)".
    [[nodiscard]] std::string describe_req(const TaskLaunch& launch,
                                           std::uint32_t req_index) const;

private:
    struct ShadowAccess {
        TaskSeq task = 0;
        std::string name;
        ReductionOp redop = kNoReduction;
        IntervalSet touched;
    };
    struct ShadowField {
        std::vector<ShadowAccess> writers;
        std::vector<ShadowAccess> readers;
        std::vector<ShadowAccess> reducers;
    };

    void race_check(const ShadowAccess& committed, Privilege priv, RegionId r, FieldId f);
    void shadow_commit(ShadowAccess access, Privilege priv, std::uint64_t key);
    /// Is there a DAG path `from` ⇝ `to`? (`from` launched earlier.)
    [[nodiscard]] bool path_exists(TaskSeq from, TaskSeq to) const;
    void warn(const std::string& msg);

    Runtime& rt_;
    bool warn_only_;

    // Task DAG, indexed by TaskSeq (seqs start at 1).
    std::vector<std::vector<TaskSeq>> preds_;
    std::vector<std::string> task_names_;

    std::unordered_map<std::uint64_t, ShadowField> shadow_;

    // Task in flight (body executing). ReqChecks are stable because the
    // vector is sized once in begin_task.
    const TaskLaunch* cur_launch_ = nullptr;
    TaskSeq cur_seq_ = 0;
    std::vector<ReqCheck> cur_checks_;

    std::uint64_t violations_ = 0;
    std::uint64_t races_ = 0;
    std::uint64_t overdeclared_ = 0;
    std::uint64_t tasks_checked_ = 0;
    std::vector<std::string> warnings_;
    std::unordered_set<std::string> lint_seen_; ///< dedupe lint per (task, req)
    obs::Counter* violation_ctr_;
    obs::Counter* race_ctr_;
    obs::Counter* overdecl_ctr_;
    obs::Counter* checked_ctr_;

    static constexpr std::size_t kMaxWarnings = 200;
};

} // namespace kdr::rt
