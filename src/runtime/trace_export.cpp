#include "runtime/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace kdr::rt {

namespace {

std::string escape_json(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Stable small integer per processor: pid = node, tid = proc within node.
int tid_of(const sim::ProcId& p) {
    return p.kind == sim::ProcKind::CPU ? 0 : 1 + p.index;
}

const char* tname_of(const sim::ProcId& p) {
    return p.kind == sim::ProcKind::CPU ? "cpu" : "gpu";
}

} // namespace

namespace {

void emit_task_events(std::ostringstream& os, const std::vector<TaskProfile>& profiles,
                      bool& first) {
    for (const TaskProfile& p : profiles) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << escape_json(p.name) << "\",\"cat\":\"task\",\"ph\":\"X\""
           << ",\"ts\":" << p.start * 1e6 << ",\"dur\":" << (p.finish - p.start) * 1e6
           << ",\"pid\":" << p.proc.node << ",\"tid\":" << tid_of(p.proc)
           << ",\"args\":{\"color\":" << p.color << ",\"proc\":\"" << tname_of(p.proc)
           << p.proc.index << "\"}}";
    }
}

void emit_span_events(std::ostringstream& os, const std::vector<obs::SpanRecord>& spans,
                      bool& first) {
    if (spans.empty()) return;
    // Metadata: name the phase track and sort it above the per-node rows.
    auto meta = [&](const char* what, const char* key, const char* value, bool quoted) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << kPhaseTrackPid
           << ",\"args\":{\"" << key << "\":";
        if (quoted) {
            os << "\"" << value << "\"";
        } else {
            os << value;
        }
        os << "}}";
    };
    meta("process_name", "name", "solver phases", true);
    meta("process_sort_index", "sort_index", "-1", false);
    for (const obs::SpanRecord& s : spans) {
        os << ",{\"name\":\"" << escape_json(s.name) << "\",\"cat\":\"phase\",\"ph\":\"X\""
           << ",\"ts\":" << s.start * 1e6 << ",\"dur\":" << (s.finish - s.start) * 1e6
           << ",\"pid\":" << kPhaseTrackPid << ",\"tid\":" << s.depth << "}";
    }
}

} // namespace

std::string to_chrome_trace(const std::vector<TaskProfile>& profiles) {
    return to_chrome_trace(profiles, {});
}

std::string to_chrome_trace(const std::vector<TaskProfile>& profiles,
                            const std::vector<obs::SpanRecord>& spans) {
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    emit_task_events(os, profiles, first);
    emit_span_events(os, spans, first);
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles) {
    write_chrome_trace(path, profiles, {});
}

void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles,
                        const std::vector<obs::SpanRecord>& spans) {
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "write_chrome_trace: cannot open '", path, "'");
    out << to_chrome_trace(profiles, spans);
    KDR_REQUIRE(out.good(), "write_chrome_trace: write to '", path, "' failed");
}

} // namespace kdr::rt
