#include "runtime/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace kdr::rt {

namespace {

std::string escape_json(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Stable small integer per processor: pid = node, tid = proc within node.
int tid_of(const sim::ProcId& p) {
    return p.kind == sim::ProcKind::CPU ? 0 : 1 + p.index;
}

const char* tname_of(const sim::ProcId& p) {
    return p.kind == sim::ProcKind::CPU ? "cpu" : "gpu";
}

} // namespace

std::string to_chrome_trace(const std::vector<TaskProfile>& profiles) {
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TaskProfile& p : profiles) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << escape_json(p.name) << "\",\"cat\":\"task\",\"ph\":\"X\""
           << ",\"ts\":" << p.start * 1e6 << ",\"dur\":" << (p.finish - p.start) * 1e6
           << ",\"pid\":" << p.proc.node << ",\"tid\":" << tid_of(p.proc)
           << ",\"args\":{\"color\":" << p.color << ",\"proc\":\"" << tname_of(p.proc)
           << p.proc.index << "\"}}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles) {
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "write_chrome_trace: cannot open '", path, "'");
    out << to_chrome_trace(profiles);
    KDR_REQUIRE(out.good(), "write_chrome_trace: write to '", path, "' failed");
}

} // namespace kdr::rt
