#pragma once

/// \file exchange.hpp
/// Precomputed halo-exchange plans (paper §3.1 / §6). For a (field,
/// canonical partition) pair the planner knows, ahead of time, exactly which
/// remote elements every consuming node will need: the dependent-partitioning
/// projection images. An ExchangePlan bakes that knowledge into per
/// (src node, dst node) messages so the runtime can
///
///  * coalesce all elements travelling between a node pair into ONE message
///    (amortizing the per-message NIC overhead), and
///  * issue a message eagerly the moment its last producing write commits,
///    overlapping the transfer with independent kernels instead of stalling
///    the consumer at kernel-ready time.
///
/// Plans are pure timing-layer objects: they change *when* transfer events
/// are charged on the simulated cluster, never what data kernels compute on,
/// so convergence histories are bitwise unaffected.

#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/region.hpp"

namespace kdr::rt {

/// All elements one destination node needs from one source node.
struct ExchangeMessage {
    int src = 0;
    int dst = 0;
    IntervalSet elems;
};

struct ExchangePlan {
    std::vector<ExchangeMessage> messages;
    /// Push messages at producer-commit time; off = plan messages are still
    /// coalesced but fetched lazily at consumer-ready time.
    bool eager = true;

    [[nodiscard]] std::size_t message_count() const noexcept { return messages.size(); }
};

/// One consuming piece: the node it runs on and the elements it reads.
using ExchangeConsumer = std::pair<int, IntervalSet>;

/// Build the plan for a field with home map `home` read by `consumers`.
/// With `coalesce` every (src, dst) node pair gets one message holding the
/// union of all elements between them; without it each (home piece, dst)
/// pair gets its own message (the per-piece ablation point). Local reads
/// (src == dst) never produce messages.
[[nodiscard]] ExchangePlan build_exchange_plan(const std::vector<HomePiece>& home,
                                               const std::vector<ExchangeConsumer>& consumers,
                                               bool coalesce = true, bool eager = true);

} // namespace kdr::rt
