#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string_view>

namespace kdr::rt {

Runtime::Runtime(sim::MachineDesc machine, Options options)
    : options_(options), cluster_(machine), mapper_(std::make_unique<RoundRobinMapper>()),
      spans_([this] { return cluster_.horizon(); }) {
    transfer_counters_.resize(static_cast<std::size_t>(this->machine().nodes) *
                              static_cast<std::size_t>(this->machine().nodes));
    analysis_stall_ctr_ = &metrics_.counter("analysis_stall_seconds");
    allreduce_wait_ctr_ = &metrics_.counter("allreduce_wait_seconds");
    task_fault_ctr_ = &metrics_.counter("task_faults_injected");
    task_retry_ctr_ = &metrics_.counter("task_retries");
    retry_exhausted_ctr_ = &metrics_.counter("task_retries_exhausted");
    rollback_ctr_ = &metrics_.counter("region_rollbacks");
    straggler_ctr_ = &metrics_.counter("task_stragglers");
    trace_record_ctr_ = &metrics_.counter("trace_recorded_tasks");
    trace_replay_ctr_ = &metrics_.counter("trace_replayed_tasks");
    trace_skip_ctr_ = &metrics_.counter("trace_depanalysis_skipped");
    trace_invalid_ctr_ = &metrics_.counter("trace_invalidations");
    trace_pin_verify_ctr_ = &metrics_.counter("trace_pinned_verifies");
    migration_ctr_ = &metrics_.counter("home_migrations");
    exchange_plans_ctr_ = &metrics_.counter("exchange_plans_built");
    coalesced_msg_ctr_ = &metrics_.counter("coalesced_messages");
    overlap_ctr_ = &metrics_.counter("transfer_overlap_seconds");
    commit_ring_.resize(1024); // grown at end-of-recording to span the trace
    task_duration_hist_ = &metrics_.histogram(
        "task_duration_seconds", obs::Histogram::exponential_bounds(1e-7, 10.0, 7));

    // Validation mode: options, or the KDR_VALIDATE environment variable so
    // whole test suites can be re-run under the checker without code changes.
    if (options_.validate_warn_only) options_.validate = true;
    if (const char* e = std::getenv("KDR_VALIDATE");
        e != nullptr && *e != '\0' && std::string_view(e) != "0") {
        options_.validate = true;
    }
    if (options_.validate) {
        validator_ =
            std::make_unique<Validator>(*this, metrics_, options_.validate_warn_only);
    }

    // Event profiler: options, or the KDR_PROFILE environment variable (its
    // value names the output file for CommonOptions binaries; any non-empty
    // value other than "0" turns recording on here).
    if (const char* e = std::getenv("KDR_PROFILE");
        e != nullptr && *e != '\0' && std::string_view(e) != "0") {
        options_.profile = true;
    }
    if (options_.profile) {
        profiler_ = std::make_unique<obs::Profiler>(this->machine().nodes,
                                                    this->machine().gpus_per_node);
        cluster_.set_profiler(profiler_.get());
    }
}

obs::Counter& Runtime::launch_counter(const std::string& name, sim::ProcKind kind) {
    const bool gpu = kind == sim::ProcKind::GPU;
    std::string key = name;
    key += gpu ? "|g" : "|c";
    auto it = launch_counters_.find(key);
    if (it == launch_counters_.end()) {
        obs::Counter& c = metrics_.counter(
            "tasks_launched", {{"task", name}, {"proc", gpu ? "gpu" : "cpu"}});
        it = launch_counters_.emplace(std::move(key), &c).first;
    }
    return *it->second;
}

void Runtime::record_transfer(int src_node, int dst_node, double bytes) {
    transfer_bytes_ += bytes;
    ++transfer_count_;
    const std::size_t slot = static_cast<std::size_t>(src_node) *
                                 static_cast<std::size_t>(machine().nodes) +
                             static_cast<std::size_t>(dst_node);
    TransferCounters& tc = transfer_counters_[slot];
    if (tc.bytes == nullptr) {
        const obs::Labels labels = {{"src", std::to_string(src_node)},
                                    {"dst", std::to_string(dst_node)}};
        tc.bytes = &metrics_.counter("transfer_bytes", labels);
        tc.count = &metrics_.counter("transfer_count", labels);
    }
    tc.bytes->add(bytes);
    tc.count->inc();
}

RegionId Runtime::create_region(IndexSpace space, std::string name) {
    ++structure_epoch_;
    const RegionId id = regions_.size();
    regions_.push_back(std::make_unique<Region>(id, std::move(space), std::move(name)));
    return id;
}

Region& Runtime::region(RegionId r) {
    KDR_REQUIRE(r < regions_.size(), "Runtime: region ", r, " does not exist");
    return *regions_[r];
}

const Region& Runtime::region(RegionId r) const {
    KDR_REQUIRE(r < regions_.size(), "Runtime: region ", r, " does not exist");
    return *regions_[r];
}

void Runtime::set_home(RegionId r, FieldId f, std::vector<HomePiece> pieces) {
    KDR_REQUIRE(!pieces.empty(), "set_home: empty placement");
    for (const HomePiece& p : pieces) {
        KDR_REQUIRE(p.node >= 0 && p.node < machine().nodes, "set_home: node ", p.node,
                    " out of range");
    }
    ++structure_epoch_;
    region(r).field(f).home = std::move(pieces);
    // Any exchange plan was built from the old placement's home pieces.
    exchanges_.erase(field_key(r, f));
}

void Runtime::set_home_from_partition(RegionId r, FieldId f, const Partition& part,
                                      const std::vector<int>& node_of_color) {
    KDR_REQUIRE(static_cast<Color>(node_of_color.size()) == part.color_count(),
                "set_home_from_partition: ", node_of_color.size(), " node assignments for ",
                part.color_count(), " colors");
    std::vector<HomePiece> pieces;
    pieces.reserve(node_of_color.size());
    for (Color c = 0; c < part.color_count(); ++c) {
        pieces.push_back({part.piece(c), node_of_color[static_cast<std::size_t>(c)]});
    }
    set_home(r, f, std::move(pieces));
}

int Runtime::home_node(RegionId r, FieldId f, const IntervalSet& piece) const {
    const FieldStorage& fs = region(r).field(f);
    gidx best_overlap = -1;
    int best_node = 0;
    for (const HomePiece& h : fs.home) {
        const gidx overlap = h.subset.set_intersection(piece).volume();
        if (overlap > best_overlap) {
            best_overlap = overlap;
            best_node = h.node;
        }
    }
    return best_node;
}

void Runtime::move_home(RegionId r, FieldId f, const IntervalSet& piece, int new_node) {
    KDR_REQUIRE(new_node >= 0 && new_node < machine().nodes, "move_home: node out of range");
    FieldStorage& fs = region(r).field(f);
    migration_ctr_->inc();
    ++structure_epoch_;

    // Find where the data currently lives and charge the migration transfer.
    double ready = fs.data_ready;
    const auto key = field_key(r, f);
    if (auto it = field_states_.find(key); it != field_states_.end()) {
        for (const Access& w : it->second.writers) {
            if (w.subset.intersects(piece)) ready = std::max(ready, w.finish);
        }
    }
    double arrival = ready;
    std::vector<HomePiece> next;
    for (const HomePiece& h : fs.home) {
        const IntervalSet moved = h.subset.set_intersection(piece);
        if (!moved.empty() && h.node != new_node) {
            const double bytes = static_cast<double>(moved.volume()) *
                                 static_cast<double>(fs.elem_size());
            arrival = std::max(arrival, cluster_.transfer(h.node, new_node, ready, bytes));
            record_transfer(h.node, new_node, bytes);
        }
        const IntervalSet kept = h.subset.set_difference(piece);
        if (!kept.empty()) next.push_back({kept, h.node});
    }
    next.push_back({piece, new_node});
    fs.home = std::move(next);

    // Migration republishes the range — future readers wait for the arrival
    // and cached copies of the moved elements are dropped; copies of
    // untouched elements stay valid. The exchange plan named the old source
    // node, so it goes too.
    if (validator_ != nullptr) validator_->note_migration(r, f, piece);
    fs.invalidate_overlapping(piece);
    exchanges_.erase(key);
    fs.data_ready = std::max(fs.data_ready, arrival);
    if (auto it = field_states_.find(key); it != field_states_.end()) {
        replace_or_append(it->second.writers, Access{task_counter_, arrival, piece});
    } else {
        field_states_[key].writers.push_back(Access{task_counter_, arrival, piece});
    }
}

void Runtime::set_mapper(std::unique_ptr<Mapper> mapper) {
    KDR_REQUIRE(mapper != nullptr, "set_mapper: null mapper");
    mapper_ = std::move(mapper);
}

// ---------------------------------------------------------------- tracing

namespace {
std::uint64_t launch_signature(const TaskLaunch& l) {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (char c : l.name) mix(static_cast<std::uint64_t>(c));
    mix(static_cast<std::uint64_t>(l.color));
    mix(static_cast<std::uint64_t>(l.proc_kind));
    for (const RegionReq& r : l.requirements) {
        mix(r.region);
        mix(r.field);
        mix(static_cast<std::uint64_t>(r.privilege));
        mix(subset_key(r.subset));
    }
    return h;
}
} // namespace

void Runtime::begin_trace(std::uint64_t trace_id) {
    KDR_REQUIRE(trace_id != 0,
                "begin_trace: trace id 0 is reserved (aliases the no-active-trace sentinel)");
    KDR_REQUIRE(!trace_active_, "begin_trace: trace ", active_trace_, " already active");
    trace_active_ = true;
    active_trace_ = trace_id;
    trace_cursor_ = 0;
    trace_begin_seq_ = task_counter_;
    trace_begin_struct_epoch_ = structure_epoch_;

    TraceState& t = traces_[trace_id];
    if (!t.recorded) {
        trace_mode_ = TraceInstanceMode::Record;
        t.record_base = trace_begin_seq_;
        return;
    }
    bool pin_verify = false;
    if (t.captured) {
        // A captured schedule is only valid if nothing moved under it: same
        // region/home structure, no untraced launches interleaved, and the
        // same number of launches since the previous instance (the cached
        // edges are *relative*, so a different gap would misalign them).
        const bool stale = t.struct_epoch != structure_epoch_ ||
                           t.quiet_epoch != quiet_epoch_ ||
                           task_counter_ - t.end_seq != t.prev_gap;
        if (stale) {
            if (t.pinned) {
                // Pinned traces outlive cross-instance disturbance (another
                // job's setup between two uses of a shared context): keep
                // the captured schedule, run this instance as a signature-
                // verified full analysis, and let a complete pass re-anchor
                // the epochs in end_trace so the instance after it replays
                // fast again.
                pin_verify = true;
                trace_pin_verify_ctr_->inc();
            } else {
                t.captured = false;
                t.recipes.clear();
                trace_invalid_ctr_->inc();
            }
        }
    }
    // Validation mode forces the verify path: the fast path skips the
    // dependence resolution whose result the race detector audits.
    if (!options_.trace_fast_path || validator_ != nullptr || pin_verify) {
        trace_mode_ = TraceInstanceMode::Replay;
        return;
    }
    if (t.captured) {
        trace_mode_ = TraceInstanceMode::Fast;
        return;
    }
    trace_mode_ = TraceInstanceMode::Capture;
    t.prev_gap = task_counter_ - t.end_seq;
    t.recipes.clear();
    t.recipes.reserve(t.signatures.size());
}

void Runtime::invalidate_replay(TraceState& t) {
    t.signatures.resize(trace_cursor_);
    t.recipes.clear();
    t.captured = false;
    trace_invalid_ctr_->inc();
}

void Runtime::end_trace() {
    KDR_REQUIRE(trace_active_, "end_trace: no active trace");
    TraceState& t = traces_[active_trace_];
    switch (trace_mode_) {
        case TraceInstanceMode::Record:
            t.recorded = true;
            // Size the commit ring so edges reaching back through one full
            // instance stay resolvable across the next two.
            ensure_ring_capacity(4 * t.signatures.size() + 64);
            break;
        case TraceInstanceMode::Capture:
            if (trace_cursor_ == t.signatures.size() &&
                structure_epoch_ == trace_begin_struct_epoch_) {
                t.captured = true;
                t.struct_epoch = structure_epoch_;
                t.quiet_epoch = quiet_epoch_;
            } else {
                // Short or structure-disturbed capture: adopt the verified
                // prefix as the trace, drop the partial schedule.
                invalidate_replay(t);
            }
            break;
        case TraceInstanceMode::Replay:
        case TraceInstanceMode::Fast:
            if (trace_cursor_ != t.signatures.size()) {
                invalidate_replay(t);
            } else if (t.pinned && t.captured &&
                       structure_epoch_ == trace_begin_struct_epoch_) {
                // A complete verified instance of a pinned trace proves the
                // launch stream still matches: re-anchor the epochs so the
                // next back-to-back instance passes the staleness check and
                // replays from the captured schedule.
                t.struct_epoch = structure_epoch_;
                t.quiet_epoch = quiet_epoch_;
            }
            break;
        case TraceInstanceMode::None:
            break;
    }
    t.end_seq = task_counter_;
    trace_active_ = false;
    trace_mode_ = TraceInstanceMode::None;
}

void Runtime::cancel_trace() noexcept {
    if (!trace_active_) return;
    if (auto it = traces_.find(active_trace_); it != traces_.end()) {
        if (trace_mode_ == TraceInstanceMode::Record) {
            traces_.erase(it); // a partial recording is useless
        } else if (trace_mode_ == TraceInstanceMode::Capture) {
            it->second.recipes.clear();
            it->second.captured = false;
        }
        // Fast/Replay: nothing persisted mid-instance; the cached schedule
        // (if any) stays valid for the next complete instance.
    }
    trace_active_ = false;
    trace_mode_ = TraceInstanceMode::None;
}

bool Runtime::replaying() const noexcept {
    return trace_active_ && trace_mode_ != TraceInstanceMode::Record &&
           trace_mode_ != TraceInstanceMode::None;
}

// ------------------------------------------------------------- dependence

void Runtime::replace_or_append(std::vector<Access>& list, Access access) {
    for (Access& a : list) {
        if (a.redop == access.redop && a.subset == access.subset) {
            // Same-subset accesses coalesce to bound list growth, but the
            // recorded availability must cover BOTH: a newer access on an
            // idle processor can finish earlier than an older one still
            // queued elsewhere, and dropping the older finish would lose a
            // WAR/WAW ordering edge.
            a.task = access.task;
            a.req_index = access.req_index;
            a.finish = std::max(a.finish, access.finish);
            return;
        }
    }
    list.push_back(std::move(access));
}

double Runtime::analyze_requirement(const RegionReq& req,
                                    std::vector<const Access*>* contributors) {
    FieldState& st = field_states_[field_key(req.region, req.field)];
    double dep = region(req.region).field(req.field).data_ready;
    auto consider = [&](const std::vector<Access>& list) {
        for (const Access& a : list) {
            if (a.subset.intersects(req.subset)) {
                dep = std::max(dep, a.finish);
                if (contributors != nullptr) contributors->push_back(&a);
            }
        }
    };
    switch (req.privilege) {
        case Privilege::ReadOnly:
            consider(st.writers);
            consider(st.reducers);
            break;
        case Privilege::WriteOnly:
        case Privilege::ReadWrite:
            consider(st.writers);
            consider(st.readers);
            consider(st.reducers);
            break;
        case Privilege::Reduce:
            consider(st.writers);
            consider(st.readers);
            for (const Access& a : st.reducers) {
                if (a.redop != req.redop && a.subset.intersects(req.subset)) {
                    dep = std::max(dep, a.finish);
                    if (contributors != nullptr) contributors->push_back(&a);
                }
            }
            break;
    }
    return dep;
}

void Runtime::capture_requirement(LaunchRecipe& recipe, const RegionReq& req, TaskSeq seq,
                                  const TraceState& t,
                                  const std::vector<const Access*>& contributors) {
    ReqRecipe rr;
    // The home data-ready fence only moves with structure changes, which
    // invalidate the capture anyway — an exact constant.
    rr.external_dep = region(req.region).field(req.field).data_ready;
    const std::uint64_t ring_span = commit_ring_.size();
    for (const Access* a : contributors) {
        // Accesses from before the recording instance (setup tasks, home
        // migrations) never re-execute: fold their finish as a constant. An
        // edge would alias whatever launch later lands at that ring slot.
        if (a->req_index == kExternalAccess || a->task <= t.record_base ||
            seq - a->task > ring_span) {
            rr.external_dep = std::max(rr.external_dep, a->finish);
            continue;
        }
        rr.edges.push_back({seq - a->task, a->req_index});
        // Coalesced list entries can carry a finish later than the producing
        // launch's own commit (replace_or_append keeps the max over merged
        // accesses). Keep the capture-time value as a floor in that case;
        // monotone virtual time makes a stale floor harmless.
        const CommitRecord& cr = commit_ring_[a->task & (ring_span - 1)];
        if (cr.seq != a->task || a->req_index >= cr.req_finish.size() ||
            a->finish > cr.req_finish[a->req_index]) {
            rr.external_dep = std::max(rr.external_dep, a->finish);
        }
    }
    recipe.reqs.push_back(std::move(rr));
}

void Runtime::commit_requirement(const RegionReq& req, TaskSeq seq, double finish,
                                 std::uint32_t req_index) {
    FieldState& st = field_states_[field_key(req.region, req.field)];
    FieldStorage& fs = region(req.region).field(req.field);
    auto drop_covered = [&](std::vector<Access>& list) {
        std::erase_if(list,
                      [&](const Access& a) { return req.subset.contains_all(a.subset); });
    };
    switch (req.privilege) {
        case Privilege::ReadOnly:
            replace_or_append(st.readers,
                              Access{seq, finish, req.subset, kNoReduction, req_index});
            break;
        case Privilege::WriteOnly:
        case Privilege::ReadWrite:
            drop_covered(st.writers);
            drop_covered(st.readers);
            drop_covered(st.reducers);
            st.writers.push_back(Access{seq, finish, req.subset, kNoReduction, req_index});
            fs.invalidate_overlapping(req.subset);
            break;
        case Privilege::Reduce:
            replace_or_append(st.reducers,
                              Access{seq, finish, req.subset, req.redop, req_index});
            fs.invalidate_overlapping(req.subset);
            break;
    }
}

void Runtime::ring_store(TaskSeq seq, const std::vector<double>& finishes) {
    CommitRecord& cr = commit_ring_[seq & (commit_ring_.size() - 1)];
    cr.seq = seq;
    cr.req_finish.assign(finishes.begin(), finishes.end());
}

void Runtime::ensure_ring_capacity(std::size_t needed) {
    std::size_t cap = commit_ring_.size();
    if (cap >= needed) return;
    while (cap < needed) cap *= 2;
    std::vector<CommitRecord> grown(cap);
    for (CommitRecord& cr : commit_ring_) {
        if (cr.seq != 0) grown[cr.seq & (cap - 1)] = std::move(cr);
    }
    commit_ring_ = std::move(grown);
}

// ---------------------------------------------------------- data movement

double Runtime::issue_read_transfers(const RegionReq& req, int dst_node, double ready) {
    FieldStorage& fs = region(req.region).field(req.field);
    double arrival = ready;

    // Everything this read needs that is not homed on the reading node.
    IntervalSet remote;
    for (const HomePiece& h : fs.home) {
        if (h.node == dst_node) continue;
        const IntervalSet part = req.subset.set_intersection(h.subset);
        if (!part.empty()) remote = remote.set_union(part);
    }
    if (remote.empty()) return arrival;

    // Copies the node already holds (lazily fetched earlier, or pushed by an
    // eager exchange plan). Entries are disjoint, so availability is the max
    // arrival over the intersected ones. The first consumer of an eager copy
    // credits how much of the transfer ran before it was needed.
    IntervalSet missing = remote;
    if (auto it = fs.cache.find(dst_node); it != fs.cache.end()) {
        for (CachedPiece& e : it->second) {
            if (!e.subset.intersects(remote)) continue;
            missing = missing.set_difference(e.subset);
            arrival = std::max(arrival, e.arrival);
            if (e.eager && !e.counted) {
                e.counted = true;
                overlap_ctr_->add(std::max(0.0, std::min(e.arrival, ready) - e.issued));
            }
        }
    }
    if (missing.empty()) return arrival;

    const auto fetch = [&](int src, const IntervalSet& part) {
        const double bytes =
            static_cast<double>(part.volume()) * static_cast<double>(fs.elem_size());
        const double at = cluster_.transfer(src, dst_node, ready, bytes);
        record_transfer(src, dst_node, bytes);
        fs.install_cached(dst_node, part, at, ready, /*eager=*/false);
        arrival = std::max(arrival, at);
    };

    // Plan path: pull each whole plan message whose elements are still
    // missing as one coalesced transfer (a lazily-consumed plan, or the
    // remainder of an eager round the producers have not completed yet).
    if (auto ex = exchanges_.find(field_key(req.region, req.field)); ex != exchanges_.end()) {
        for (const ExchangeMessage& m : ex->second.plan.messages) {
            if (m.dst != dst_node) continue;
            const IntervalSet part = m.elems.set_intersection(missing);
            if (part.empty()) continue;
            fetch(m.src, part);
            coalesced_msg_ctr_->inc();
            missing = missing.set_difference(part);
            if (missing.empty()) return arrival;
        }
    }

    // Per-piece fallback for reads no plan message covers.
    for (const HomePiece& h : fs.home) {
        if (h.node == dst_node) continue;
        const IntervalSet part = missing.set_intersection(h.subset);
        if (part.empty()) continue;
        fetch(h.node, part);
        missing = missing.set_difference(part);
        if (missing.empty()) break;
    }
    return arrival;
}

// --------------------------------------------------------- exchange plans

void Runtime::set_exchange_plan(RegionId r, FieldId f, ExchangePlan plan) {
    for (const ExchangeMessage& m : plan.messages) {
        KDR_REQUIRE(m.src >= 0 && m.src < machine().nodes && m.dst >= 0 &&
                        m.dst < machine().nodes,
                    "set_exchange_plan: message endpoint out of range");
        KDR_REQUIRE(m.src != m.dst, "set_exchange_plan: local message (src == dst)");
        KDR_REQUIRE(!m.elems.empty(), "set_exchange_plan: empty message");
    }
    ExchangeState st;
    st.msgs.resize(plan.messages.size());
    st.plan = std::move(plan);
    exchanges_[field_key(r, f)] = std::move(st);
    exchange_plans_ctr_->inc();
}

void Runtime::clear_exchange_plan(RegionId r, FieldId f) {
    exchanges_.erase(field_key(r, f));
}

bool Runtime::has_exchange_plan(RegionId r, FieldId f) const {
    return exchanges_.contains(field_key(r, f));
}

void Runtime::eager_exchange(const RegionReq& req, double finish) {
    const auto it = exchanges_.find(field_key(req.region, req.field));
    if (it == exchanges_.end() || !it->second.plan.eager) return;
    ExchangeState& ex = it->second;
    FieldStorage& fs = region(req.region).field(req.field);
    for (std::size_t i = 0; i < ex.plan.messages.size(); ++i) {
        const ExchangeMessage& m = ex.plan.messages[i];
        const IntervalSet part = req.subset.set_intersection(m.elems);
        if (part.empty()) continue;
        ExchangeMsgState& st = ex.msgs[i];
        if (st.pending.intersects(part)) {
            // A rewrite of already-pending elements starts a fresh round
            // (the previous round fired, or never completed and is stale).
            st.pending = {};
            st.ready = 0.0;
        }
        st.pending = st.pending.set_union(part);
        st.ready = std::max(st.ready, finish);
        if (!st.pending.contains_all(m.elems)) continue;
        // Every element of the message has been (re)written: push the whole
        // coalesced copy now, at producer-commit time, so the wire time runs
        // concurrently with whatever executes before the consumer is ready.
        const double bytes = static_cast<double>(m.elems.volume()) *
                             static_cast<double>(fs.elem_size());
        const double at = cluster_.transfer(m.src, m.dst, st.ready, bytes);
        record_transfer(m.src, m.dst, bytes);
        coalesced_msg_ctr_->inc();
        fs.install_cached(m.dst, m.elems, at, st.ready, /*eager=*/true);
        st.pending = {};
        st.ready = 0.0;
    }
}

double Runtime::issue_write_backs(const RegionReq& req, int src_node, double finish) {
    FieldStorage& fs = region(req.region).field(req.field);
    double arrival = finish;
    for (const HomePiece& h : fs.home) {
        if (h.node == src_node) continue;
        const IntervalSet part = req.subset.set_intersection(h.subset);
        if (part.empty()) continue;
        const double bytes =
            static_cast<double>(part.volume()) * static_cast<double>(fs.elem_size());
        arrival = std::max(arrival, cluster_.transfer(src_node, h.node, finish, bytes));
        record_transfer(src_node, h.node, bytes);
    }
    return arrival;
}

// ------------------------------------------------------------- launching

FutureScalar Runtime::launch(TaskLaunch launch) {
    const TaskSeq seq = ++task_counter_;
    launch_counter(launch.name, launch.proc_kind).inc();

    // Tracing: validate / record the launch signature and pick the path.
    double overhead = machine().task_launch_overhead;
    const LaunchRecipe* recipe = nullptr;
    bool capturing = false;
    if (trace_active_) {
        TraceState& t = traces_[active_trace_];
        const std::uint64_t sig = launch_signature(launch);
        if (trace_mode_ != TraceInstanceMode::Record &&
            (trace_cursor_ >= t.signatures.size() || t.signatures[trace_cursor_] != sig)) {
            // The launch stream no longer matches the memoized trace. Keep
            // the verified prefix, drop the cached schedule, and record the
            // new tail — replay resumes once the new sequence repeats. This
            // is a graceful re-record, not an error.
            invalidate_replay(t);
            trace_mode_ = TraceInstanceMode::Record;
            t.record_base = trace_begin_seq_;
        }
        if (trace_mode_ == TraceInstanceMode::Record) {
            t.signatures.push_back(sig);
            trace_record_ctr_->inc();
        } else {
            // Replaying, but only the fast path below skips analysis. A
            // verify/capture instance re-runs full dependence analysis, so
            // it pays the full dynamic launch overhead — claiming the traced
            // overhead while still analyzing was the bug this path fixes.
            trace_replay_ctr_->inc();
            if (trace_mode_ == TraceInstanceMode::Fast &&
                structure_epoch_ != trace_begin_struct_epoch_) {
                // Region/home structure changed mid-replay: fall back to
                // full analysis for the rest of this instance.
                t.captured = false;
                t.recipes.clear();
                trace_invalid_ctr_->inc();
                trace_mode_ = TraceInstanceMode::Replay;
            }
            if (trace_mode_ == TraceInstanceMode::Fast) recipe = &t.recipes[trace_cursor_];
            capturing = trace_mode_ == TraceInstanceMode::Capture;
            ++trace_cursor_;
        }
    } else {
        ++quiet_epoch_;
    }

    const sim::ProcId proc = mapper_->select_processor(launch, machine());
    const std::size_t nreq = launch.requirements.size();

    // Scalar dependences (reduced-scalar ready times, plus the collective
    // front under blocking-allreduce mode) are tracked separately from the
    // data/analysis terms so the stall a task spends waiting on an allreduce
    // — and nothing else — lands in allreduce_wait_seconds.
    double scalar_ready = collective_front_;
    for (double t : launch.scalar_deps) scalar_ready = std::max(scalar_ready, t);
    double nonscalar_ready = launch.not_before;
    double dep_ready = std::max(launch.not_before, scalar_ready);
    std::vector<double> req_dep(nreq, 0.0);

    // Event-profiler dependence edges for this launch: producer kernel events
    // (from contributors or replayed trace edges) plus whatever the cluster
    // records on our behalf below (analysis interval, input transfers).
    const bool prof = profiler_ != nullptr;
    std::vector<obs::EventId> ev_deps;

    if (recipe != nullptr) {
        // Fast path: resolve predecessors from the captured event edges —
        // no dependence analysis at all. Each edge addresses a producer by
        // launch-stream offset; the commit ring maps it to that producer's
        // finish time in *this* run.
        const std::uint64_t mask = commit_ring_.size() - 1;
        for (std::size_t i = 0; i < nreq && recipe != nullptr; ++i) {
            const ReqRecipe& rr = recipe->reqs[i];
            double dep = rr.external_dep;
            for (const TraceEdge& e : rr.edges) {
                const CommitRecord& cr = commit_ring_[(seq - e.delta) & mask];
                if (cr.seq != seq - e.delta || e.req >= cr.req_finish.size()) {
                    recipe = nullptr; // producer evicted: re-analyze
                    break;
                }
                dep = std::max(dep, cr.req_finish[e.req]);
                if (prof) {
                    const TaskSeq pseq = seq - e.delta;
                    if (pseq >= 1 && pseq <= task_event_ids_.size() &&
                        task_event_ids_[pseq - 1] != obs::kNoEvent) {
                        ev_deps.push_back(task_event_ids_[pseq - 1]);
                    }
                }
            }
            req_dep[i] = dep;
        }
        if (recipe == nullptr) {
            ev_deps.clear(); // partially resolved edges; the analysis path recollects
            // Safety net: this launch falls back to analysis and the trace
            // recaptures on its next instance.
            TraceState& t = traces_[active_trace_];
            t.captured = false;
            t.recipes.clear();
            trace_invalid_ctr_->inc();
            trace_mode_ = TraceInstanceMode::Replay;
        }
    }

    // Everything the cluster records between here and the exec — the
    // analysis-pipeline interval and any input-transfer events — belongs to
    // this launch's dependence set.
    if (prof) profiler_->begin_collect();

    double ready;
    if (recipe != nullptr) {
        trace_skip_ctr_->inc();
        for (std::size_t i = 0; i < nreq; ++i) {
            dep_ready = std::max(dep_ready, req_dep[i]);
            nonscalar_ready = std::max(nonscalar_ready, req_dep[i]);
        }
        // The replay trigger (signature check + popping the memoized
        // schedule) still occupies the node's runtime pipeline for the
        // traced overhead — that is the replay *throughput* bound — but
        // unlike the analysis path the task does not wait for the pipeline:
        // dependences come from the captured event edges, so the analysis
        // stall disappears and input transfers are issued straight off the
        // replayed edges.
        cluster_.analyze(proc.node, machine().traced_launch_overhead);
        ready = dep_ready;
        for (std::size_t i = 0; i < nreq; ++i) {
            const RegionReq& req = launch.requirements[i];
            if (reads(req.privilege)) {
                const double arrival = issue_read_transfers(req, proc.node, req_dep[i]);
                ready = std::max(ready, arrival);
                nonscalar_ready = std::max(nonscalar_ready, arrival);
            }
        }
    } else {
        // Dependence analysis runs through the target node's runtime pipeline
        // (utility processors). It serializes per node but runs *ahead of*
        // execution, so it is hidden whenever compute per iteration exceeds
        // analysis per iteration — and becomes the floor on tiny problems.
        const double analysis_done = cluster_.analyze(proc.node, overhead);

        // Dependence-only ready time: what the task would wait on if analysis
        // were free. The gap up to analysis_done is time the task spends
        // stalled behind the runtime pipeline rather than behind real data
        // dependences.
        const bool want_contributors = capturing || validator_ != nullptr || prof;
        std::vector<const Access*> contributors;
        std::vector<TaskSeq> preds;
        LaunchRecipe rec;
        for (std::size_t i = 0; i < nreq; ++i) {
            const RegionReq& req = launch.requirements[i];
            const double dep =
                analyze_requirement(req, want_contributors ? &contributors : nullptr);
            req_dep[i] = dep;
            dep_ready = std::max(dep_ready, dep);
            nonscalar_ready = std::max(nonscalar_ready, dep);
            if (capturing) {
                capture_requirement(rec, req, seq, traces_[active_trace_], contributors);
            }
            if (validator_ != nullptr) {
                // The accesses that bounded this requirement ARE the task's
                // DAG predecessor edges — the race detector audits exactly
                // this resolution against the actual touched sets.
                for (const Access* a : contributors) {
                    if (a->req_index != kExternalAccess) preds.push_back(a->task);
                }
            }
            if (prof) {
                for (const Access* a : contributors) {
                    if (a->req_index == kExternalAccess) continue;
                    if (a->task >= 1 && a->task <= task_event_ids_.size() &&
                        task_event_ids_[a->task - 1] != obs::kNoEvent) {
                        ev_deps.push_back(task_event_ids_[a->task - 1]);
                    }
                }
            }
            contributors.clear();
        }
        if (capturing) traces_[active_trace_].recipes.push_back(std::move(rec));
        if (validator_ != nullptr) validator_->note_task(seq, launch, std::move(preds));
        analysis_stall_ctr_->add(std::max(0.0, analysis_done - dep_ready));

        // Input transfers are issued by the analysis stage, so they start no
        // earlier than it completes.
        // Only genuinely reading privileges fetch: WriteOnly produces fresh
        // data, and a Reduce instance starts from the reduction identity and
        // folds its contribution in via write-back — neither needs the old
        // values on the executing node (fetching for Reduce double-charged
        // every reduction task with a halo it never reads).
        ready = std::max(dep_ready, analysis_done);
        nonscalar_ready = std::max(nonscalar_ready, analysis_done);
        for (std::size_t i = 0; i < nreq; ++i) {
            const RegionReq& req = launch.requirements[i];
            if (reads(req.privilege)) {
                const double arrival = issue_read_transfers(
                    req, proc.node, std::max(req_dep[i], analysis_done));
                ready = std::max(ready, arrival);
                nonscalar_ready = std::max(nonscalar_ready, arrival);
            }
        }
    }

    // Allreduce-attributable stall: the part of this task's wait explained
    // only by a reduced scalar (or the blocking collective front) — local
    // data, analysis, and transfers would all have been ready earlier.
    allreduce_wait_ctr_->add(std::max(0.0, scalar_ready - nonscalar_ready));

    if (prof) {
        for (obs::EventId id : profiler_->end_collect()) ev_deps.push_back(id);
    }

    // Schedule the task. Under an active fault model an attempt may fail
    // transiently or run slowed; the retry loop charges wasted time and
    // re-executes in place. Region-version rollback is by construction:
    // the functional body and the requirement commits below run only after
    // a successful attempt, so a failed attempt's writes are never visible
    // and every retry replays against the pre-task versions.
    double finish;
    if (sim::FaultModel* fm = cluster_.fault_model();
        fm != nullptr && fm->active()) {
        finish = exec_with_faults(launch, proc, ready, *fm);
    } else {
        finish = cluster_.exec(proc, ready, launch.cost, 0.0);
    }

    const double duration = cluster_.duration_of(proc, launch.cost);
    obs::EventId task_ev = obs::kNoEvent;
    if (prof) {
        task_ev = profiler_->record(proc.node, profiler_lane(proc),
                                    obs::EventCategory::Kernel, launch.name,
                                    finish - duration, finish, std::move(ev_deps));
        // seq-indexed slot (resize covers launches that aborted mid-flight).
        task_event_ids_.resize(static_cast<std::size_t>(seq), obs::kNoEvent);
        task_event_ids_[static_cast<std::size_t>(seq) - 1] = task_ev;
    }

    // Functional execution. Under validation the body runs with per-
    // requirement access checkers installed; afterwards the actual touched
    // sets are race-checked against the shadow frontier and linted.
    std::optional<double> scalar;
    task_scalars_.clear();
    if (options_.materialize && launch.body) {
        TaskContext ctx(*this, launch);
        if (validator_ != nullptr) {
            validator_->begin_task(seq, launch);
            try {
                launch.body(ctx);
            } catch (...) {
                validator_->abort_task();
                throw;
            }
            validator_->commit_task();
        } else {
            launch.body(ctx);
        }
        scalar = ctx.scalar();
        task_scalars_ = ctx.take_scalars();
    }

    // Write-backs and access-list updates. Effective finishes also land in
    // the commit ring so future trace captures/replays can reference them.
    // With the profiler on, transfer events the cluster records for the
    // write-backs and eager pushes below depend on this task's kernel event.
    if (prof && task_ev != obs::kNoEvent) profiler_->push_context_dep(task_ev);
    std::vector<double> req_finish(nreq, finish);
    for (std::size_t i = 0; i < nreq; ++i) {
        const RegionReq& req = launch.requirements[i];
        if (writes(req.privilege) || req.privilege == Privilege::Reduce) {
            req_finish[i] = issue_write_backs(req, proc.node, finish);
        }
        commit_requirement(req, seq, req_finish[i], static_cast<std::uint32_t>(i));
    }
    ring_store(seq, req_finish);

    // Producer-driven halo pushes: a committed write completes its exchange
    // messages as early as the data is at home (req_finish includes the
    // write-back), overlapping the transfers with downstream kernels. Runs
    // after the commits above so the pushed copies survive invalidation.
    for (std::size_t i = 0; i < nreq; ++i) {
        const RegionReq& req = launch.requirements[i];
        if (writes(req.privilege) || req.privilege == Privilege::Reduce) {
            eager_exchange(req, req_finish[i]);
        }
    }
    if (prof && task_ev != obs::kNoEvent) profiler_->pop_context_dep();

    task_duration_hist_->observe(duration);
    if (options_.profiling) {
        profiles_.push_back({launch.name, proc, finish - duration, finish, launch.color});
    }

    return {scalar.value_or(0.0), finish};
}

double Runtime::exec_with_faults(const TaskLaunch& launch, sim::ProcId proc, double ready,
                                 sim::FaultModel& fm) {
    const double base = cluster_.duration_of(proc, launch.cost);
    int failures = 0;
    for (;;) {
        const sim::TaskFault f = fm.sample_task();
        if (f.slowdown > 1.0) straggler_ctr_->inc();
        if (!f.fail) {
            return cluster_.exec_duration(proc, ready, base * f.slowdown);
        }
        // Failed attempt: the processor ran for a fraction of the (possibly
        // slowed) duration before dying. Charge that wasted slice — the next
        // attempt cannot start earlier than the failure was detected.
        task_fault_ctr_->inc();
        bool writes_state = false;
        for (const RegionReq& req : launch.requirements) {
            if (writes(req.privilege) || req.privilege == Privilege::Reduce) {
                writes_state = true;
                break;
            }
        }
        if (writes_state) rollback_ctr_->inc();
        const double waste = base * f.slowdown * f.waste_frac;
        ready = cluster_.exec_duration(proc, ready, waste);
        if (profiler_ != nullptr) {
            profiler_->record(proc.node, profiler_lane(proc), obs::EventCategory::Kernel,
                              launch.name + " (failed attempt)", ready - waste, ready);
        }
        abort_trace_schedule();
        ++failures;
        if (failures > options_.max_task_retries) {
            retry_exhausted_ctr_->inc();
            throw TaskFailedError("task '" + launch.name + "' failed " +
                                  std::to_string(failures) +
                                  " times, exceeding the retry budget of " +
                                  std::to_string(options_.max_task_retries));
        }
        task_retry_ctr_->inc();
    }
}

void Runtime::abort_trace_schedule() {
    if (!trace_active_) return;
    if (trace_mode_ != TraceInstanceMode::Capture && trace_mode_ != TraceInstanceMode::Fast) {
        return;
    }
    // The captured schedule embeds attempt-free finish times; a fault makes
    // them wrong for the rest of this instance. Drop the schedule (the
    // verified signature prefix survives) and finish the instance with full
    // dependence analysis, which sees the post-retry commit times.
    TraceState& t = traces_[active_trace_];
    t.captured = false;
    t.recipes.clear();
    trace_invalid_ctr_->inc();
    trace_mode_ = TraceInstanceMode::Replay;
}

std::vector<TaskProfile> Runtime::take_profiles() {
    std::vector<TaskProfile> out;
    out.swap(profiles_);
    return out;
}

// ---------------------------------------------------------- solve reports

Runtime::SolveBaseline Runtime::capture_baseline() const {
    SolveBaseline b;
    b.metrics = metrics_.snapshot();
    b.horizon = cluster_.horizon();
    b.tasks = task_counter_;
    b.transfer_bytes = transfer_bytes_;
    b.transfer_count = transfer_count_;
    b.profiles = profiles_.size();
    b.spans = spans_.completed().size();
    const int nodes = machine().nodes;
    b.node_busy.reserve(static_cast<std::size_t>(nodes));
    b.nic_busy.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
        double busy = cluster_.proc_busy({n, sim::ProcKind::CPU, 0});
        for (int g = 0; g < machine().gpus_per_node; ++g) {
            busy += cluster_.proc_busy({n, sim::ProcKind::GPU, g});
        }
        b.node_busy.push_back(busy);
        b.nic_busy.push_back(cluster_.nic_send_busy(n) + cluster_.nic_recv_busy(n));
    }
    b.transfer_pairs.reserve(transfer_counters_.size());
    for (const TransferCounters& tc : transfer_counters_) {
        b.transfer_pairs.emplace_back(tc.bytes != nullptr ? tc.bytes->value() : 0.0,
                                      tc.count != nullptr ? tc.count->value() : 0.0);
    }
    if (const sim::FaultModel* fm = cluster_.fault_model(); fm != nullptr) {
        b.nic_degraded = fm->nic_degraded();
        b.nic_retransmits = fm->nic_retransmits();
    }
    if (validator_ != nullptr) {
        b.tasks_checked = validator_->tasks_checked();
        b.violations = validator_->violations();
        b.race_pairs = validator_->race_pairs();
        b.overdeclared = validator_->overdeclared();
    }
    return b;
}

obs::SolveReport Runtime::build_solve_report(std::vector<obs::ConvergenceSample> convergence,
                                             std::string status,
                                             const SolveBaseline* since) const {
    obs::SolveReport r;
    r.makespan = cluster_.horizon() - (since != nullptr ? since->horizon : 0.0);
    r.tasks = task_counter_ - (since != nullptr ? since->tasks : 0);
    r.convergence = std::move(convergence);
    r.status = std::move(status);

    // Fault-injection and recovery counters. All read through counter_value so
    // a run without faults (or without a recovery controller) reports zeros.
    // Against a baseline every counter is the per-interval increase.
    auto u64 = [this, since](const char* name) {
        const double v = since != nullptr ? metrics_.counter_value_since(name, since->metrics)
                                          : metrics_.counter_value(name);
        return static_cast<std::uint64_t>(v);
    };
    r.global_syncs = u64("global_syncs");
    r.allreduce_wait_seconds =
        since != nullptr ? metrics_.counter_value_since("allreduce_wait_seconds", since->metrics)
                         : metrics_.counter_value("allreduce_wait_seconds");
    r.faults.task_faults = u64("task_faults_injected");
    r.faults.task_retries = u64("task_retries");
    r.faults.retries_exhausted = u64("task_retries_exhausted");
    r.faults.rollbacks = u64("region_rollbacks");
    r.faults.stragglers = u64("task_stragglers");
    r.faults.checkpoints = u64("solver_checkpoints");
    r.faults.restores = u64("solver_restores");
    r.faults.restarts = u64("solver_restarts");
    r.faults.fallbacks = u64("solver_fallbacks");
    if (const sim::FaultModel* fm = cluster_.fault_model(); fm != nullptr) {
        r.faults.nic_degraded =
            fm->nic_degraded() - (since != nullptr ? since->nic_degraded : 0);
        r.faults.nic_retransmits =
            fm->nic_retransmits() - (since != nullptr ? since->nic_retransmits : 0);
    }

    if (validator_ != nullptr) {
        r.validation.enabled = true;
        r.validation.tasks_checked =
            validator_->tasks_checked() - (since != nullptr ? since->tasks_checked : 0);
        r.validation.violations =
            validator_->violations() - (since != nullptr ? since->violations : 0);
        r.validation.race_pairs =
            validator_->race_pairs() - (since != nullptr ? since->race_pairs : 0);
        r.validation.overdeclared =
            validator_->overdeclared() - (since != nullptr ? since->overdeclared : 0);
    }

    // Per-task-kind stats from the profiles still held by the runtime (call
    // before take_profiles). Profile durations are exactly the busy seconds
    // charged to the executing processor, so kind totals partition busy time.
    std::map<std::string, obs::TaskKindStats> kinds;
    const std::size_t prof_base =
        since != nullptr ? std::min(since->profiles, profiles_.size()) : 0;
    for (std::size_t pi = prof_base; pi < profiles_.size(); ++pi) {
        const TaskProfile& p = profiles_[pi];
        obs::TaskKindStats& k = kinds[p.name];
        k.name = p.name;
        ++k.count;
        const double d = p.finish - p.start;
        k.total += d;
        k.max = std::max(k.max, d);
    }
    for (auto& [name, k] : kinds) {
        k.mean = k.count > 0 ? k.total / static_cast<double>(k.count) : 0.0;
        r.task_kinds.push_back(std::move(k));
    }
    std::sort(r.task_kinds.begin(), r.task_kinds.end(),
              [](const obs::TaskKindStats& a, const obs::TaskKindStats& b) {
                  return a.total > b.total;
              });

    // Per-node busy time over the node's processors (aggregated CPU + GPUs),
    // plus the node's NIC occupancy for the communication fraction.
    const int nodes = machine().nodes;
    const int procs_per_node = 1 + machine().gpus_per_node;
    double max_busy = 0.0;
    for (int n = 0; n < nodes; ++n) {
        double busy = cluster_.proc_busy({n, sim::ProcKind::CPU, 0});
        for (int g = 0; g < machine().gpus_per_node; ++g) {
            busy += cluster_.proc_busy({n, sim::ProcKind::GPU, g});
        }
        double comm = cluster_.nic_send_busy(n) + cluster_.nic_recv_busy(n);
        if (since != nullptr && static_cast<std::size_t>(n) < since->node_busy.size()) {
            busy -= since->node_busy[static_cast<std::size_t>(n)];
            comm -= since->nic_busy[static_cast<std::size_t>(n)];
        }
        const double denom = r.makespan * static_cast<double>(procs_per_node);
        obs::NodeStats ns;
        ns.node = n;
        ns.busy = busy;
        ns.utilization = denom > 0.0 ? busy / denom : 0.0;
        ns.comm_seconds = comm;
        ns.comm_fraction =
            r.makespan > 0.0 ? ns.comm_seconds / (2.0 * r.makespan) : 0.0;
        ns.idle_fraction = 1.0 - ns.utilization;
        r.nodes.push_back(ns);
        r.busy_total += busy;
        max_busy = std::max(max_busy, busy);
    }
    const double mean_busy = r.busy_total / static_cast<double>(nodes);
    r.load_imbalance = mean_busy > 0.0 ? max_busy / mean_busy : 1.0;

    // Transfer matrix from the cached per-pair counters (slot order = src-major).
    r.transfer_bytes = transfer_bytes_ - (since != nullptr ? since->transfer_bytes : 0.0);
    r.transfer_count = transfer_count_ - (since != nullptr ? since->transfer_count : 0);
    for (std::size_t slot = 0; slot < transfer_counters_.size(); ++slot) {
        const TransferCounters& tc = transfer_counters_[slot];
        if (tc.bytes == nullptr) continue;
        double bytes = tc.bytes->value();
        double count = tc.count->value();
        if (since != nullptr && slot < since->transfer_pairs.size()) {
            bytes -= since->transfer_pairs[slot].first;
            count -= since->transfer_pairs[slot].second;
        }
        if (count <= 0.0 && bytes <= 0.0) continue;
        r.transfers.push_back({static_cast<int>(slot / static_cast<std::size_t>(nodes)),
                               static_cast<int>(slot % static_cast<std::size_t>(nodes)),
                               bytes, static_cast<std::uint64_t>(count)});
    }

    // Solver-phase totals from the completed spans.
    std::map<std::string, obs::PhaseStats> phases;
    const auto& completed = spans_.completed();
    const std::size_t span_base =
        since != nullptr ? std::min(since->spans, completed.size()) : 0;
    for (std::size_t si = span_base; si < completed.size(); ++si) {
        const obs::SpanRecord& s = completed[si];
        obs::PhaseStats& p = phases[s.name];
        p.name = s.name;
        ++p.count;
        p.total += s.finish - s.start;
    }
    for (auto& [name, p] : phases) r.phases.push_back(std::move(p));
    std::sort(r.phases.begin(), r.phases.end(),
              [](const obs::PhaseStats& a, const obs::PhaseStats& b) {
                  return a.total > b.total;
              });

    // Task-duration quantiles (bucket-interpolated) for latency rows.
    const obs::HistogramBaseline* dur_base =
        since != nullptr
            ? metrics_.histogram_baseline(since->metrics, "task_duration_seconds")
            : nullptr;
    r.task_duration.p50 = task_duration_hist_->quantile_since(0.50, dur_base);
    r.task_duration.p90 = task_duration_hist_->quantile_since(0.90, dur_base);
    r.task_duration.p99 = task_duration_hist_->quantile_since(0.99, dur_base);

    // Critical-path attribution when the event profiler is on.
    if (profiler_ != nullptr) {
        const obs::CriticalPath cp = profiler_->critical_path();
        r.critical_path.enabled = true;
        r.critical_path.total = cp.total;
        r.critical_path.kernel = cp.category_seconds(obs::EventCategory::Kernel);
        r.critical_path.transfer = cp.category_seconds(obs::EventCategory::Transfer);
        r.critical_path.handshake = cp.category_seconds(obs::EventCategory::Handshake);
        r.critical_path.allreduce = cp.category_seconds(obs::EventCategory::Allreduce);
        r.critical_path.runtime_overhead = cp.category_seconds(obs::EventCategory::Runtime);
        r.critical_path.idle = cp.category_seconds(obs::EventCategory::Idle);
        for (const obs::CriticalPath::KindCost& k : cp.by_kind) {
            r.critical_path.by_kind.push_back({k.name, k.segments, k.seconds});
        }
        r.critical_path.events = profiler_->events_recorded();
        r.critical_path.events_dropped = profiler_->events_dropped();
    }

    return r;
}

} // namespace kdr::rt
