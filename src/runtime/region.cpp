#include "runtime/region.hpp"

#include <iterator>
#include <utility>

namespace kdr::rt {

FieldStorage::FieldStorage(std::string name, std::size_t elem_size, gidx count, bool materialize,
                           const std::type_info& type)
    : name_(std::move(name)), elem_size_(elem_size), count_(count), type_(type) {
    KDR_REQUIRE(elem_size_ > 0, "field '", name_, "': zero element size");
    KDR_REQUIRE(count >= 0, "field '", name_, "': negative element count");
    if (materialize) {
        data_.assign(static_cast<std::size_t>(count) * elem_size_, std::byte{0});
    }
    home.push_back({IntervalSet::full(count), 0});
}

void FieldStorage::invalidate_overlapping(const IntervalSet& written) {
    for (auto it = cache.begin(); it != cache.end();) {
        std::vector<CachedPiece>& entries = it->second;
        std::erase_if(entries, [&](CachedPiece& e) {
            if (!e.subset.intersects(written)) return false;
            e.subset = e.subset.set_difference(written);
            return e.subset.empty();
        });
        it = entries.empty() ? cache.erase(it) : std::next(it);
    }
}

CachedPiece& FieldStorage::install_cached(int node, IntervalSet subset, double arrival,
                                          double issued, bool eager) {
    std::vector<CachedPiece>& entries = cache[node];
    std::erase_if(entries, [&](CachedPiece& e) {
        if (!e.subset.intersects(subset)) return false;
        e.subset = e.subset.set_difference(subset);
        return e.subset.empty();
    });
    entries.push_back({std::move(subset), arrival, issued, eager, false});
    return entries.back();
}

FieldId Region::add_field(std::string field_name, std::size_t elem_size, bool materialize,
                          const std::type_info& type) {
    fields_.push_back(std::make_unique<FieldStorage>(std::move(field_name), elem_size,
                                                     space_.size(), materialize, type));
    return static_cast<FieldId>(fields_.size() - 1);
}

FieldStorage& Region::field(FieldId f) {
    KDR_REQUIRE(f < fields_.size(), "region '", name_, "': field ", f, " does not exist");
    return *fields_[f];
}

const FieldStorage& Region::field(FieldId f) const {
    KDR_REQUIRE(f < fields_.size(), "region '", name_, "': field ", f, " does not exist");
    return *fields_[f];
}

std::uint64_t subset_key(const IntervalSet& s) {
    // FNV-1a over interval boundaries.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](gidx v) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<std::uint64_t>(v >> (8 * b)) & 0xFFu;
            h *= 1099511628211ULL;
        }
    };
    s.for_each_interval([&](const Interval& iv) {
        mix(iv.lo);
        mix(iv.hi);
    });
    return h;
}

} // namespace kdr::rt
