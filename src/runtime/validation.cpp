#include "runtime/validation.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/runtime.hpp"

namespace kdr::rt {

namespace {

const char* privilege_name(Privilege p) {
    switch (p) {
        case Privilege::ReadOnly: return "ReadOnly";
        case Privilege::WriteOnly: return "WriteOnly";
        case Privilege::ReadWrite: return "ReadWrite";
        case Privilege::Reduce: return "Reduce";
    }
    return "?";
}

std::string set_to_string(const IntervalSet& s) {
    std::ostringstream os;
    os << s;
    return os.str();
}

std::uint64_t shadow_key(RegionId r, FieldId f) { return (r << 32) | f; }

} // namespace

// ------------------------------------------------------------------ ReqCheck

ReqCheck::ReqCheck(Validator& v, const TaskLaunch& launch, std::uint32_t req_index,
                   gidx field_size)
    : v_(v), launch_(launch), req_(req_index), field_size_(field_size) {}

void ReqCheck::check_element(gidx i, const char* verb) {
    used_ = true;
    if (i < 0 || i >= field_size_) {
        // Not continuable even in warn-only mode: the underlying load/store
        // would land outside the field storage entirely.
        throw PrivilegeError("privilege violation: " + v_.describe_req(launch_, req_) + ": " +
                             verb + " at index " + std::to_string(i) +
                             " outside the field storage [0, " + std::to_string(field_size_) +
                             ")");
    }
    const IntervalSet& subset = launch_.requirements[req_].subset;
    if (!subset.contains(i)) {
        v_.violation(v_.describe_req(launch_, req_) + ": " + verb + " at index " +
                     std::to_string(i) + " outside the declared subset " +
                     set_to_string(subset));
    }
}

void ReqCheck::on_read(gidx i) {
    check_element(i, "read");
    switch (launch_.requirements[req_].privilege) {
        case Privilege::ReadOnly:
        case Privilege::ReadWrite:
            break;
        case Privilege::WriteOnly:
            if (!already_touched(i)) {
                v_.violation(v_.describe_req(launch_, req_) + ": read at index " +
                             std::to_string(i) +
                             " of WriteOnly data not yet written by this task");
            }
            break;
        case Privilege::Reduce:
            v_.violation(v_.describe_req(launch_, req_) + ": non-reduction read at index " +
                         std::to_string(i) + " violates Reduce");
            break;
    }
    record(i);
}

void ReqCheck::on_write(gidx i) {
    check_element(i, "write");
    switch (launch_.requirements[req_].privilege) {
        case Privilege::WriteOnly:
        case Privilege::ReadWrite:
            break;
        case Privilege::ReadOnly:
            v_.violation(v_.describe_req(launch_, req_) + ": write at index " +
                         std::to_string(i) + " violates ReadOnly");
            break;
        case Privilege::Reduce:
            v_.violation(v_.describe_req(launch_, req_) + ": non-reduction write at index " +
                         std::to_string(i) + " violates Reduce");
            break;
    }
    record(i);
}

void ReqCheck::on_rmw(gidx i) {
    check_element(i, "read-modify-write");
    switch (launch_.requirements[req_].privilege) {
        case Privilege::ReadWrite:
        case Privilege::Reduce: // the reduction combine is exactly an RMW
            break;
        case Privilege::ReadOnly:
            v_.violation(v_.describe_req(launch_, req_) + ": read-modify-write at index " +
                         std::to_string(i) + " violates ReadOnly");
            break;
        case Privilege::WriteOnly:
            // Accumulating into an element this task already wrote (e.g. a
            // zero-initialized output) is fine; reading anything older is not.
            if (!already_touched(i)) {
                v_.violation(v_.describe_req(launch_, req_) + ": read-modify-write at index " +
                             std::to_string(i) +
                             " of WriteOnly data not yet written by this task");
            }
            break;
    }
    record(i);
}

void ReqCheck::note_whole_subset() {
    used_ = true;
    compacted_ = compacted_.set_union(launch_.requirements[req_].subset);
}

void ReqCheck::record(gidx i) {
    if (has_cur_) {
        if (i == cur_.hi) {
            ++cur_.hi;
            return;
        }
        if (cur_.contains(i)) return;
        runs_.push_back(cur_);
    }
    cur_ = {i, i + 1};
    has_cur_ = true;
    if (runs_.size() >= 4096) compact();
}

bool ReqCheck::already_touched(gidx i) const {
    if (has_cur_ && cur_.contains(i)) return true;
    if (compacted_.contains(i)) return true;
    return std::any_of(runs_.begin(), runs_.end(),
                       [i](const Interval& iv) { return iv.contains(i); });
}

void ReqCheck::compact() {
    if (runs_.empty()) return;
    compacted_ = compacted_.set_union(IntervalSet::from_intervals(std::move(runs_)));
    runs_.clear();
}

IntervalSet ReqCheck::touched() const {
    std::vector<Interval> all = runs_;
    if (has_cur_) all.push_back(cur_);
    return compacted_.set_union(IntervalSet::from_intervals(std::move(all)));
}

// ----------------------------------------------------------------- Validator

Validator::Validator(Runtime& rt, obs::Registry& metrics, bool warn_only)
    : rt_(rt), warn_only_(warn_only) {
    violation_ctr_ = &metrics.counter("privilege_violations");
    race_ctr_ = &metrics.counter("race_pairs");
    overdecl_ctr_ = &metrics.counter("overdeclared_reqs");
    checked_ctr_ = &metrics.counter("validated_tasks");
    preds_.emplace_back(); // seq 0 is unused (task seqs start at 1)
    task_names_.emplace_back();
}

void Validator::note_task(TaskSeq seq, const TaskLaunch& launch, std::vector<TaskSeq> preds) {
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    if (preds_.size() <= seq) {
        preds_.resize(static_cast<std::size_t>(seq) + 1);
        task_names_.resize(static_cast<std::size_t>(seq) + 1);
    }
    preds_[static_cast<std::size_t>(seq)] = std::move(preds);
    task_names_[static_cast<std::size_t>(seq)] = launch.name;
}

void Validator::begin_task(TaskSeq seq, const TaskLaunch& launch) {
    cur_launch_ = &launch;
    cur_seq_ = seq;
    cur_checks_.clear();
    cur_checks_.reserve(launch.requirements.size());
    for (std::uint32_t i = 0; i < launch.requirements.size(); ++i) {
        const RegionReq& rq = launch.requirements[i];
        cur_checks_.emplace_back(*this, launch, i, rt_.region(rq.region).space().size());
    }
    ++tasks_checked_;
    checked_ctr_->inc();
}

AccessHook* Validator::hook(std::uint32_t req_index) {
    if (cur_launch_ == nullptr || req_index >= cur_checks_.size()) return nullptr;
    return &cur_checks_[req_index];
}

void Validator::note_unscoped_field(RegionId r, FieldId f) {
    if (cur_launch_ == nullptr) return;
    bool declared = false;
    for (std::uint32_t i = 0; i < cur_launch_->requirements.size(); ++i) {
        const RegionReq& rq = cur_launch_->requirements[i];
        if (rq.region == r && rq.field == f) {
            cur_checks_[i].note_whole_subset();
            declared = true;
        }
    }
    if (!declared) {
        violation("task '" + cur_launch_->name + "' accesses region '" +
                  rt_.region(r).name() + "' field '" + rt_.region(r).field(f).name() +
                  "' with no declared requirement");
    }
}

void Validator::commit_task() {
    const TaskLaunch& launch = *cur_launch_;
    for (ReqCheck& c : cur_checks_) {
        // Requirements the body never took an accessor for exist only for
        // cost/dependence modeling (e.g. phantom matrix entries) — there is
        // no actual access to check or lint.
        if (!c.used()) continue;
        const std::uint32_t i = c.req_index();
        const RegionReq& rq = launch.requirements[i];
        const IntervalSet touched = c.touched();
        if (!touched.empty()) {
            ShadowAccess acc{cur_seq_, launch.name, rq.redop, touched};
            race_check(acc, rq.privilege, rq.region, rq.field);
            shadow_commit(std::move(acc), rq.privilege, shadow_key(rq.region, rq.field));
        }
        const IntervalSet unused = rq.subset.set_difference(touched);
        if (!unused.empty()) {
            ++overdeclared_;
            overdecl_ctr_->inc();
            if (lint_seen_.insert(launch.name + "#" + std::to_string(i)).second) {
                warn("over-declaration: " + describe_req(launch, i) + " declared " +
                     set_to_string(rq.subset) + " but touched only " + set_to_string(touched) +
                     " (" + std::to_string(unused.volume()) + " elements never accessed)");
            }
        }
    }
    cur_launch_ = nullptr;
    cur_checks_.clear();
}

void Validator::abort_task() noexcept {
    cur_launch_ = nullptr;
    cur_checks_.clear();
}

void Validator::race_check(const ShadowAccess& committed, Privilege priv, RegionId r,
                           FieldId f) {
    auto it = shadow_.find(shadow_key(r, f));
    if (it == shadow_.end()) return;
    const ShadowField& sf = it->second;
    auto check = [&](const std::vector<ShadowAccess>& list, bool same_redop_commutes) {
        for (const ShadowAccess& a : list) {
            if (a.task == cur_seq_) continue;
            if (same_redop_commutes && a.redop == committed.redop) continue;
            if (!a.touched.intersects(committed.touched)) continue;
            if (path_exists(a.task, cur_seq_)) continue;
            ++races_;
            race_ctr_->inc();
            warn("possible race: task '" + a.name + "' #" + std::to_string(a.task) +
                 " and task '" + committed.name + "' #" + std::to_string(committed.task) +
                 " have conflicting unordered accesses to region '" + rt_.region(r).name() +
                 "' field '" + rt_.region(r).field(f).name() + "' over " +
                 set_to_string(a.touched.set_intersection(committed.touched)));
        }
    };
    switch (priv) {
        case Privilege::ReadOnly:
            check(sf.writers, false);
            check(sf.reducers, false);
            break;
        case Privilege::WriteOnly:
        case Privilege::ReadWrite:
            check(sf.writers, false);
            check(sf.readers, false);
            check(sf.reducers, false);
            break;
        case Privilege::Reduce:
            check(sf.writers, false);
            check(sf.readers, false);
            check(sf.reducers, true);
            break;
    }
}

void Validator::shadow_commit(ShadowAccess access, Privilege priv, std::uint64_t key) {
    ShadowField& sf = shadow_[key];
    // Mirrors the runtime's access-list bookkeeping (commit_requirement):
    // same-subset accesses in one class coalesce to the newest task (the
    // dependence machinery guarantees the recorded availability covers both),
    // and a write retires everything it fully covers — the retiring task took
    // a dependence on each retired access, so reachability is preserved.
    auto coalesce = [&](std::vector<ShadowAccess>& list) {
        for (ShadowAccess& a : list) {
            if (a.redop == access.redop && a.touched == access.touched) {
                a.task = access.task;
                a.name = std::move(access.name);
                return;
            }
        }
        list.push_back(std::move(access));
    };
    auto drop_covered = [&](std::vector<ShadowAccess>& list) {
        std::erase_if(list, [&](const ShadowAccess& a) {
            return access.touched.contains_all(a.touched);
        });
    };
    switch (priv) {
        case Privilege::ReadOnly:
            coalesce(sf.readers);
            break;
        case Privilege::WriteOnly:
        case Privilege::ReadWrite:
            drop_covered(sf.writers);
            drop_covered(sf.readers);
            drop_covered(sf.reducers);
            sf.writers.push_back(std::move(access));
            break;
        case Privilege::Reduce:
            coalesce(sf.reducers);
            break;
    }
}

void Validator::note_migration(RegionId r, FieldId f, const IntervalSet& piece) {
    auto it = shadow_.find(shadow_key(r, f));
    if (it == shadow_.end()) return;
    // A migration republishes the range with a hard temporal fence (future
    // readers wait for the moved data), so accesses it fully covers can no
    // longer race with anything later.
    auto scrub = [&](std::vector<ShadowAccess>& list) {
        std::erase_if(list,
                      [&](const ShadowAccess& a) { return piece.contains_all(a.touched); });
    };
    scrub(it->second.writers);
    scrub(it->second.readers);
    scrub(it->second.reducers);
}

bool Validator::path_exists(TaskSeq from, TaskSeq to) const {
    if (from == to) return true;
    std::vector<TaskSeq> stack{to};
    std::unordered_set<TaskSeq> visited;
    while (!stack.empty()) {
        const TaskSeq t = stack.back();
        stack.pop_back();
        if (t >= preds_.size()) continue;
        for (const TaskSeq p : preds_[static_cast<std::size_t>(t)]) {
            if (p < from) continue; // preds precede their task: no path back up
            if (p == from) return true;
            if (visited.insert(p).second) stack.push_back(p);
        }
    }
    return false;
}

void Validator::violation(const std::string& msg) {
    ++violations_;
    violation_ctr_->inc();
    const std::string full = "privilege violation: " + msg;
    if (!warn_only_) throw PrivilegeError(full);
    warn(full);
}

void Validator::warn(const std::string& msg) {
    if (warnings_.size() < kMaxWarnings) warnings_.push_back(msg);
}

std::string Validator::describe_req(const TaskLaunch& launch, std::uint32_t req_index) const {
    const RegionReq& rq = launch.requirements[req_index];
    std::ostringstream os;
    os << "task '" << launch.name << "' req " << req_index << " (region '"
       << rt_.region(rq.region).name() << "' field '"
       << rt_.region(rq.region).field(rq.field).name() << "', "
       << privilege_name(rq.privilege) << ")";
    return os.str();
}

} // namespace kdr::rt
