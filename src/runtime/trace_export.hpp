#pragma once

/// \file trace_export.hpp
/// Export task profiles as a Chrome-trace (chrome://tracing, Perfetto) JSON
/// timeline: one row per simulated processor, one slice per task, virtual
/// microseconds on the time axis. The fastest way to *see* the schedules the
/// runtime produces — overlap, pipeline stalls, load imbalance.

#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace kdr::rt {

/// Render profiles as a Chrome-trace JSON string ("traceEvents" array of
/// complete events). Times are converted from virtual seconds to µs.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TaskProfile>& profiles);

/// Write the trace to a file (throws kdr::Error on I/O failure).
void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles);

} // namespace kdr::rt
