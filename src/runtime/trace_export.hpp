#pragma once

/// \file trace_export.hpp
/// Export task profiles as a Chrome-trace (chrome://tracing, Perfetto) JSON
/// timeline: one row per simulated processor, one slice per task, virtual
/// microseconds on the time axis. The fastest way to *see* the schedules the
/// runtime produces — overlap, pipeline stalls, load imbalance.

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "runtime/types.hpp"

namespace kdr::rt {

/// Synthetic pid of the solver-phase span track. Far above any node id, and
/// given a negative process_sort_index so viewers place it above the
/// per-processor task rows.
inline constexpr int kPhaseTrackPid = 1 << 20;

/// Render profiles as a Chrome-trace JSON string ("traceEvents" array of
/// complete events). Times are converted from virtual seconds to µs.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TaskProfile>& profiles);

/// Same, plus a solver-phase track: spans become slices on pid
/// `kPhaseTrackPid` with tid = nesting depth, sorted above the processors.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TaskProfile>& profiles,
                                          const std::vector<obs::SpanRecord>& spans);

/// Write the trace to a file (throws kdr::Error on I/O failure).
void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles);
void write_chrome_trace(const std::string& path, const std::vector<TaskProfile>& profiles,
                        const std::vector<obs::SpanRecord>& spans);

} // namespace kdr::rt
