#pragma once

/// \file types.hpp
/// Core vocabulary of the task runtime: region/field/task identifiers,
/// privileges, region requirements, and scalar futures.
///
/// The runtime reproduces the semantics LegionSolvers relies on from Legion
/// (paper §5): tasks name the data they touch via *region requirements*
/// (region, field, subset, privilege); the runtime derives dependences,
/// inserts data movement, and schedules tasks onto the simulated machine in
/// virtual time. Numerics execute for real ("functional mode") unless a
/// region is phantom (timing-only benchmarks at scales the host cannot hold).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geometry/interval_set.hpp"
#include "partition/partition.hpp" // Color
#include "simcluster/machine.hpp"
#include "support/error.hpp"

namespace kdr::rt {

/// Thrown by Runtime::launch when a task exhausts its bounded retry budget
/// under injected faults. None of the task's effects are visible (the retry
/// protocol commits writes only on a successful attempt), so the launch
/// stream is consistent up to — but excluding — the failed task. Solver
/// drivers map this to SolveStatus::fault_aborted.
class TaskFailedError : public Error {
public:
    explicit TaskFailedError(const std::string& what) : Error(what) {}
};

using RegionId = std::uint64_t;
using FieldId = std::uint32_t;
using TaskSeq = std::uint64_t; ///< submission-order task number

/// Access privilege of a region requirement (Legion's coherence model).
enum class Privilege : std::uint8_t {
    ReadOnly,
    WriteOnly,
    ReadWrite,
    Reduce, ///< commutative reduction; same-op reductions run concurrently
};

[[nodiscard]] constexpr bool reads(Privilege p) {
    return p == Privilege::ReadOnly || p == Privilege::ReadWrite;
}
[[nodiscard]] constexpr bool writes(Privilege p) {
    return p == Privilege::WriteOnly || p == Privilege::ReadWrite;
}

/// Reduction operator id (0 = none). Only sum is used by the solvers, but
/// the dependence rules treat any distinct ids as conflicting.
using ReductionOp = std::uint32_t;
inline constexpr ReductionOp kNoReduction = 0;
inline constexpr ReductionOp kSumReduction = 1;

struct RegionReq {
    RegionId region = 0;
    FieldId field = 0;
    Privilege privilege = Privilege::ReadOnly;
    IntervalSet subset;
    ReductionOp redop = kNoReduction;
};

/// A scalar future: the value is available immediately in functional mode
/// (program order is a valid serialization), the *ready time* is when the
/// producing task completes in virtual time. Downstream tasks that consume
/// the scalar list it as a dependence.
struct FutureScalar {
    double value = 0.0;
    double ready_time = 0.0;
};

class TaskContext;

/// One task launch. `body` runs synchronously at submission in functional
/// mode; `cost` feeds the roofline model for the virtual-time schedule.
struct TaskLaunch {
    std::string name;
    std::function<void(TaskContext&)> body; ///< may be empty (pure cost model)
    std::vector<RegionReq> requirements;
    sim::TaskCost cost;
    sim::ProcKind proc_kind = sim::ProcKind::GPU;
    Color color = 0;                 ///< mapper hint: which piece this is
    std::vector<double> scalar_deps; ///< ready times of consumed futures
    /// Earliest virtual start time. Lets externally-timed events (a service
    /// request arriving at t) gate a task — and everything data-dependent on
    /// it — without a synthetic producer task.
    double not_before = 0.0;
};

/// Completed-task profile record (virtual times).
struct TaskProfile {
    std::string name;
    sim::ProcId proc;
    double start = 0.0;
    double finish = 0.0;
    Color color = 0;
};

} // namespace kdr::rt
