#pragma once

/// \file region.hpp
/// Logical regions: an index space crossed with named, typed fields. Fields
/// are *materialized* (backed by host memory, kernels run for real) or
/// *phantom* (metadata only — used by timing-mode benchmarks whose problem
/// sizes exceed host memory; the virtual-time schedule is unaffected because
/// costs derive from metadata).
///
/// Placement: each (region, field) carries a home map — a list of
/// (subset, node) pieces — plus a per-node cache of remote element copies the
/// node already holds (fetched lazily or pushed eagerly by an exchange
/// plan). The runtime consults these to insert transfer events for remote
/// reads; read-only data (matrices) is fetched once and cached until
/// written, while per-iteration vector writes invalidate exactly the
/// overlapping cached copies and force fresh halo exchanges — matching the
/// steady-state communication pattern of the paper's solvers.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "geometry/index_space.hpp"
#include "runtime/types.hpp"
#include "support/error.hpp"

namespace kdr::rt {

/// One (subset → node) placement piece.
struct HomePiece {
    IntervalSet subset;
    int node = 0;
};

/// One copy of remote elements a node holds. Entries of the same node are
/// kept pairwise disjoint so a read's availability is the max arrival over
/// the entries it intersects, never a stale duplicate.
struct CachedPiece {
    IntervalSet subset;
    double arrival = 0.0; ///< virtual time the copy becomes usable
    double issued = 0.0;  ///< when its transfer was issued (overlap accounting)
    bool eager = false;   ///< pushed by an exchange plan at producer-commit time
    bool counted = false; ///< overlap already credited to transfer_overlap_seconds
};

class FieldStorage {
public:
    FieldStorage(std::string name, std::size_t elem_size, gidx count, bool materialize,
                 const std::type_info& type = typeid(void));

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
    [[nodiscard]] bool materialized() const noexcept { return !data_.empty() || count_ == 0; }
    /// Element type recorded at add_field<T> time; typeid(void) for fields
    /// declared by raw element size only (e.g. phantom matrix-entry fields).
    [[nodiscard]] std::type_index type() const noexcept { return type_; }

    template <typename T>
    [[nodiscard]] std::span<T> as() {
        KDR_REQUIRE(sizeof(T) == elem_size_, "field '", name_, "': element size mismatch (",
                    sizeof(T), " vs ", elem_size_, ")");
        KDR_REQUIRE(type_ == typeid(void) || type_ == std::type_index(typeid(T)), "field '",
                    name_, "': stored element type '", type_.name(),
                    "' cannot be reinterpreted as '", typeid(T).name(),
                    "' (same size is not the same type)");
        KDR_REQUIRE(materialized(), "field '", name_,
                    "' is phantom (timing-only); data access is unavailable");
        return {reinterpret_cast<T*>(data_.data()), static_cast<std::size_t>(count_)};
    }

    // --- placement & coherence bookkeeping (used by the Runtime) ---
    std::vector<HomePiece> home;            ///< defaults to everything on node 0
    /// Per destination node: disjoint copies of remote elements it holds.
    std::unordered_map<int, std::vector<CachedPiece>> cache;
    /// When the written data becomes globally visible (incl. write-back).
    double data_ready = 0.0;

    /// Drop the parts of every node's cached copies that a write to `written`
    /// made stale. Copies of disjoint elements survive.
    void invalidate_overlapping(const IntervalSet& written);
    /// Record that `node` now holds `subset` (arriving at `arrival`),
    /// subtracting it from older entries so entries stay disjoint.
    CachedPiece& install_cached(int node, IntervalSet subset, double arrival, double issued,
                                bool eager);

private:
    std::string name_;
    std::size_t elem_size_;
    gidx count_;
    std::type_index type_;
    std::vector<std::byte> data_;
};

class Region {
public:
    Region(RegionId id, IndexSpace space, std::string name)
        : id_(id), space_(std::move(space)), name_(std::move(name)) {}

    [[nodiscard]] RegionId id() const noexcept { return id_; }
    [[nodiscard]] const IndexSpace& space() const noexcept { return space_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    FieldId add_field(std::string field_name, std::size_t elem_size, bool materialize,
                      const std::type_info& type = typeid(void));
    [[nodiscard]] FieldStorage& field(FieldId f);
    [[nodiscard]] const FieldStorage& field(FieldId f) const;
    [[nodiscard]] std::size_t field_count() const noexcept { return fields_.size(); }

private:
    RegionId id_;
    IndexSpace space_;
    std::string name_;
    std::vector<std::unique_ptr<FieldStorage>> fields_;
};

/// Stable hash of an interval set, used as the piece-cache key.
[[nodiscard]] std::uint64_t subset_key(const IntervalSet& s);

} // namespace kdr::rt
