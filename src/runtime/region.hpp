#pragma once

/// \file region.hpp
/// Logical regions: an index space crossed with named, typed fields. Fields
/// are *materialized* (backed by host memory, kernels run for real) or
/// *phantom* (metadata only — used by timing-mode benchmarks whose problem
/// sizes exceed host memory; the virtual-time schedule is unaffected because
/// costs derive from metadata).
///
/// Placement: each (region, field) carries a home map — a list of
/// (subset, node) pieces — plus a version counter bumped on every write and a
/// per-node cache of fetched pieces. The runtime consults these to insert
/// transfer events for remote reads; read-only data (matrices) is fetched
/// once and cached until written, while per-iteration vector writes
/// invalidate caches and force fresh halo exchanges — matching the
/// steady-state communication pattern of the paper's solvers.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "geometry/index_space.hpp"
#include "runtime/types.hpp"
#include "support/error.hpp"

namespace kdr::rt {

/// One (subset → node) placement piece.
struct HomePiece {
    IntervalSet subset;
    int node = 0;
};

class FieldStorage {
public:
    FieldStorage(std::string name, std::size_t elem_size, gidx count, bool materialize,
                 const std::type_info& type = typeid(void));

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
    [[nodiscard]] bool materialized() const noexcept { return !data_.empty() || count_ == 0; }
    /// Element type recorded at add_field<T> time; typeid(void) for fields
    /// declared by raw element size only (e.g. phantom matrix-entry fields).
    [[nodiscard]] std::type_index type() const noexcept { return type_; }

    template <typename T>
    [[nodiscard]] std::span<T> as() {
        KDR_REQUIRE(sizeof(T) == elem_size_, "field '", name_, "': element size mismatch (",
                    sizeof(T), " vs ", elem_size_, ")");
        KDR_REQUIRE(type_ == typeid(void) || type_ == std::type_index(typeid(T)), "field '",
                    name_, "': stored element type '", type_.name(),
                    "' cannot be reinterpreted as '", typeid(T).name(),
                    "' (same size is not the same type)");
        KDR_REQUIRE(materialized(), "field '", name_,
                    "' is phantom (timing-only); data access is unavailable");
        return {reinterpret_cast<T*>(data_.data()), static_cast<std::size_t>(count_)};
    }

    // --- placement & coherence bookkeeping (used by the Runtime) ---
    std::vector<HomePiece> home;            ///< defaults to everything on node 0
    std::uint64_t version = 0;              ///< bumped on every write
    /// Per destination node: subset-key → version at fetch time.
    std::unordered_map<int, std::unordered_map<std::uint64_t, std::uint64_t>> cache;
    /// When the written data becomes globally visible (incl. write-back).
    double data_ready = 0.0;

private:
    std::string name_;
    std::size_t elem_size_;
    gidx count_;
    std::type_index type_;
    std::vector<std::byte> data_;
};

class Region {
public:
    Region(RegionId id, IndexSpace space, std::string name)
        : id_(id), space_(std::move(space)), name_(std::move(name)) {}

    [[nodiscard]] RegionId id() const noexcept { return id_; }
    [[nodiscard]] const IndexSpace& space() const noexcept { return space_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    FieldId add_field(std::string field_name, std::size_t elem_size, bool materialize,
                      const std::type_info& type = typeid(void));
    [[nodiscard]] FieldStorage& field(FieldId f);
    [[nodiscard]] const FieldStorage& field(FieldId f) const;
    [[nodiscard]] std::size_t field_count() const noexcept { return fields_.size(); }

private:
    RegionId id_;
    IndexSpace space_;
    std::string name_;
    std::vector<std::unique_ptr<FieldStorage>> fields_;
};

/// Stable hash of an interval set, used as the piece-cache key.
[[nodiscard]] std::uint64_t subset_key(const IntervalSet& s);

} // namespace kdr::rt
