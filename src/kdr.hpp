#pragma once

/// \file kdr.hpp
/// Umbrella header: the full public API of the KDRSolvers reproduction.
/// Fine-grained headers remain available for faster compiles.

// Foundations.
#include "geometry/index_space.hpp"
#include "geometry/interval_set.hpp"
#include "geometry/point.hpp"
#include "partition/partition.hpp"
#include "partition/projection.hpp"
#include "partition/relation.hpp"

// Storage formats and operator utilities.
#include "sparse/adapters.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/block_diagonal.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/described.hpp"
#include "sparse/described_formats.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/level_desc.hpp"
#include "sparse/linear_operator.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sell.hpp"

// Observability: metrics registry, solver-phase spans, solve reports.
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

// Simulated machine and task runtime.
#include "runtime/mapper.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace_export.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/machine.hpp"

// Workload generators.
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"

// KDRSolvers core.
#include "core/load_balancer.hpp"
#include "core/monitor.hpp"
#include "core/planner.hpp"
#include "core/preconditioners.hpp"
#include "core/scalar.hpp"
#include "core/solvers.hpp"
#include "core/solvers_extra.hpp"
#include "core/solvers_preconditioned.hpp"
