#pragma once

/// \file dense.hpp
/// Dense format (paper Fig 3): the structural assumption `K = R × D` plus an
/// *empty* metadata structure — both relations are the implicit projections
/// π₁ (quotient by |D|) and π₂ (remainder mod |D|) of the row-major
/// linearization. Dense matrices in KDRSolvers are "a structural assumption
/// paired with an empty data structure" (paper §3).

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class DenseMatrix final : public LinearOperator<T> {
public:
    /// Build from row-major entries (entries.size() == |R| * |D|).
    DenseMatrix(IndexSpace domain, IndexSpace range, std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(range_.size() * domain_.size(), "dense_kernel")),
          entries_(std::move(entries)) {
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == kernel_.size(),
                    "DenseMatrix: entries size ", entries_.size(), " != |R|*|D| ",
                    kernel_.size());
        row_rel_ = std::make_shared<QuotientRelation>(kernel_, range_, domain_.size());
        col_rel_ = std::make_shared<RemainderRelation>(kernel_, domain_, domain_.size());
    }

    static DenseMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                     const std::vector<Triplet<T>>& ts) {
        std::vector<T> entries(static_cast<std::size_t>(range.size() * domain.size()), T{});
        for (const Triplet<T>& t : ts)
            entries[static_cast<std::size_t>(t.row * domain.size() + t.col)] += t.value;
        return DenseMatrix(std::move(domain), std::move(range), std::move(entries));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "dense"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const gidx d = domain_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                y[static_cast<std::size_t>(k / d)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(k % d)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const gidx d = domain_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                y[static_cast<std::size_t>(k % d)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(k / d)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        std::vector<Triplet<T>> ts;
        const gidx d = domain_.size();
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const T v = entries_[static_cast<std::size_t>(k)];
            if (v != T{}) ts.push_back({k / d, k % d, v});
        }
        return ts;
    }

    [[nodiscard]] T at(gidx i, gidx j) const {
        return entries_[static_cast<std::size_t>(i * domain_.size() + j)];
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> entries_;
    std::shared_ptr<QuotientRelation> row_rel_;
    std::shared_ptr<RemainderRelation> col_rel_;
};

} // namespace kdr
