#pragma once

/// \file csr.hpp
/// CSR format (paper Fig 3): kernel space totally ordered; column relation is
/// a stored array `col : K → D`, row relation is `rowptr : R → [K, K]`
/// (contiguous kernel interval per row). The interval structure makes both
/// projections O(#rows / #intervals), which is why CSR is the workhorse of
/// the paper's benchmarks (and the only GPU format PETSc supports).

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class CsrMatrix final : public LinearOperator<T> {
public:
    /// Build from CSR arrays. `rowptr` has range.size()+1 entries.
    CsrMatrix(IndexSpace domain, IndexSpace range, std::vector<gidx> rowptr,
              std::vector<gidx> cols, std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(entries.size()), "csr_kernel")),
          entries_(std::move(entries)) {
        KDR_REQUIRE(cols.size() == entries_.size(), "CsrMatrix: cols/entries length mismatch (",
                    cols.size(), "/", entries_.size(), ")");
        row_rel_ = std::make_shared<RowPtrRelation>(kernel_, range_, std::move(rowptr));
        col_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, domain_, std::move(cols));
    }

    /// Build from triplets (coalesced: duplicates summed, rows sorted).
    static CsrMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                   std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        std::vector<gidx> rowptr(static_cast<std::size_t>(range.size()) + 1, 0);
        std::vector<gidx> cols;
        std::vector<T> vals;
        cols.reserve(ts.size());
        vals.reserve(ts.size());
        for (const Triplet<T>& t : ts) {
            KDR_REQUIRE(t.row >= 0 && t.row < range.size(), "CsrMatrix: row ", t.row,
                        " out of range");
            ++rowptr[static_cast<std::size_t>(t.row) + 1];
            cols.push_back(t.col);
            vals.push_back(t.value);
        }
        for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];
        return CsrMatrix(std::move(domain), std::move(range), std::move(rowptr), std::move(cols),
                         std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "csr"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& rowptr = row_rel_->offsets();
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            // Locate the row containing iv.lo, then walk forward.
            auto it = std::upper_bound(rowptr.begin() + 1, rowptr.end(), iv.lo);
            gidx row = it - (rowptr.begin() + 1);
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                while (k >= rowptr[static_cast<std::size_t>(row) + 1]) ++row;
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(row)] +=
                    entries_[ku] * x[static_cast<std::size_t>(cols[ku])];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& rowptr = row_rel_->offsets();
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            auto it = std::upper_bound(rowptr.begin() + 1, rowptr.end(), iv.lo);
            gidx row = it - (rowptr.begin() + 1);
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                while (k >= rowptr[static_cast<std::size_t>(row) + 1]) ++row;
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(cols[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(row)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& rowptr = row_rel_->offsets();
        const auto& cols = col_rel_->targets();
        std::vector<Triplet<T>> ts;
        ts.reserve(entries_.size());
        for (gidx i = 0; i < range_.size(); ++i) {
            for (gidx k = rowptr[static_cast<std::size_t>(i)];
                 k < rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                ts.push_back({i, cols[ku], entries_[ku]});
            }
        }
        return ts;
    }

    void add_diagonal(std::span<T> diag) const override {
        KDR_REQUIRE(domain_.size() == range_.size(), "add_diagonal: not square");
        const auto& rowptr = row_rel_->offsets();
        const auto& cols = col_rel_->targets();
        for (gidx i = 0; i < range_.size(); ++i) {
            for (gidx k = rowptr[static_cast<std::size_t>(i)];
                 k < rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
                if (cols[static_cast<std::size_t>(k)] == i)
                    diag[static_cast<std::size_t>(i)] += entries_[static_cast<std::size_t>(k)];
            }
        }
    }

    [[nodiscard]] const std::vector<gidx>& rowptr() const noexcept { return row_rel_->offsets(); }
    [[nodiscard]] const std::vector<gidx>& cols() const noexcept { return col_rel_->targets(); }
    [[nodiscard]] const std::vector<T>& entries() const noexcept { return entries_; }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> entries_;
    std::shared_ptr<RowPtrRelation> row_rel_;
    std::shared_ptr<ArrayFunctionRelation> col_rel_;
};

} // namespace kdr
