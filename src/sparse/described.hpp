#pragma once

/// \file described.hpp
/// `DescribedFormat` — a LinearOperator derived entirely from a
/// `sparse::FormatDesc` (level_desc.hpp). From the per-dimension level
/// descriptions it derives, with no per-format code:
///
///   * the row/col `Relation` implementations, composed from the existing
///     fast-path relation classes (RowPtrRelation, ArrayFunctionRelation,
///     QuotientRelation, RemainderRelation) — so `derive_plan`'s dependent
///     projections take the same closed-form/adjacency fast paths and hit
///     the same `ProjectionCache` machinery as the hand-written classes;
///   * the SpMV/transpose loop nests as piece-restricted kernels, walking
///     the kernel space in ascending slot order — the *same* accumulation
///     order as the legacy class of the matching layout, so residual
///     histories are bitwise identical (the differential golden suite pins
///     this for every migrated format);
///   * structural validation at construction: pointer monotonicity,
///     coordinate ranges, the ordered/unique promises, padding hygiene —
///     a described format cannot silently violate its own description;
///   * the SpMV byte-stream cost model, from the level kinds, with the
///     `FormatDesc::calibrated` override as the measurement hook.
///
/// The legacy classes (csr.hpp, coo.hpp, ...) stay compiled as reference
/// twins; described_formats.hpp re-expresses them as ~10-line descriptions
/// and is where new formats are born without writing a class at all.

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "sparse/level_desc.hpp"
#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr::sparse {

template <typename T>
class DescribedFormat final : public LinearOperator<T> {
public:
    /// Raw storage for one described matrix; which members are used depends
    /// on the description's layout family. Public so tests can hand-build
    /// (malformed) instances against the structural validator.
    struct Storage {
        std::vector<gidx> fiber_ptr;     ///< PointerOuter: outer_dim+1 offsets
        std::vector<gidx> outer_idx;     ///< SortedCoords/SlicedFibers: outer coord per slot
        std::vector<gidx> inner_idx;     ///< inner coord per slot (all but FullGrid)
        std::vector<gidx> slice_offsets; ///< SlicedFibers: nslices+1 slot offsets
        gidx width = 0;                  ///< PaddedFibers: slots per fiber
        std::vector<T> values;
    };

    DescribedFormat(FormatDesc desc, IndexSpace domain, IndexSpace range, Storage st)
        : desc_(std::move(desc)),
          family_(classify_format(desc_)),
          domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(st.values.size()),
                                     desc_.name + "_kernel")),
          entries_(std::move(st.values)) {
        validate_storage(st);
        build_relations(std::move(st));
    }

    /// Assemble from triplets according to the description. Triplets are
    /// coalesced (row-major sort, duplicates summed) first; column-outer
    /// pointer/coordinate layouts then re-sort column-major, exactly like
    /// their legacy twins.
    static DescribedFormat from_triplets(FormatDesc desc, IndexSpace domain, IndexSpace range,
                                         std::vector<Triplet<T>> ts) {
        const LayoutFamily family = classify_format(desc);
        ts = coalesce_triplets(std::move(ts));
        const bool row_outer = desc.outer == Axis::Row;
        const gidx outer_dim = row_outer ? range.size() : domain.size();
        const auto oc = [&](const Triplet<T>& t) { return row_outer ? t.row : t.col; };
        const auto ic = [&](const Triplet<T>& t) { return row_outer ? t.col : t.row; };
        for (const Triplet<T>& t : ts) {
            KDR_REQUIRE(t.row >= 0 && t.row < range.size(), "format '", desc.name, "': row ",
                        t.row, " out of range");
            KDR_REQUIRE(t.col >= 0 && t.col < domain.size(), "format '", desc.name,
                        "': col ", t.col, " out of range");
        }
        if (!row_outer &&
            (family == LayoutFamily::PointerOuter || family == LayoutFamily::SortedCoords)) {
            std::sort(ts.begin(), ts.end(), [](const Triplet<T>& a, const Triplet<T>& b) {
                return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
        }

        Storage st;
        switch (family) {
            case LayoutFamily::PointerOuter: {
                st.fiber_ptr.assign(static_cast<std::size_t>(outer_dim) + 1, 0);
                st.inner_idx.reserve(ts.size());
                st.values.reserve(ts.size());
                for (const Triplet<T>& t : ts) {
                    ++st.fiber_ptr[static_cast<std::size_t>(oc(t)) + 1];
                    st.inner_idx.push_back(ic(t));
                    st.values.push_back(t.value);
                }
                for (std::size_t f = 1; f < st.fiber_ptr.size(); ++f)
                    st.fiber_ptr[f] += st.fiber_ptr[f - 1];
                break;
            }
            case LayoutFamily::SortedCoords: {
                st.outer_idx.reserve(ts.size());
                st.inner_idx.reserve(ts.size());
                st.values.reserve(ts.size());
                for (const Triplet<T>& t : ts) {
                    st.outer_idx.push_back(oc(t));
                    st.inner_idx.push_back(ic(t));
                    st.values.push_back(t.value);
                }
                break;
            }
            case LayoutFamily::FullGrid: {
                const gidx inner_dim = row_outer ? domain.size() : range.size();
                st.values.assign(static_cast<std::size_t>(outer_dim * inner_dim), T{});
                for (const Triplet<T>& t : ts)
                    st.values[static_cast<std::size_t>(oc(t) * inner_dim + ic(t))] += t.value;
                break;
            }
            case LayoutFamily::PaddedFibers: {
                std::vector<gidx> occupancy(static_cast<std::size_t>(outer_dim), 0);
                for (const Triplet<T>& t : ts) ++occupancy[static_cast<std::size_t>(oc(t))];
                gidx width = 1;
                for (gidx occ : occupancy) width = std::max(width, occ);
                if (desc.padded_width > 0) {
                    KDR_REQUIRE(width <= desc.padded_width, "format '", desc.name,
                                "': a fiber holds ", width, " entries but padded_width is ",
                                desc.padded_width);
                    width = desc.padded_width;
                }
                st.width = width;
                st.inner_idx.assign(static_cast<std::size_t>(outer_dim * width), kNoTarget);
                st.values.assign(static_cast<std::size_t>(outer_dim * width), T{});
                std::vector<gidx> cursor(static_cast<std::size_t>(outer_dim), 0);
                for (const Triplet<T>& t : ts) {
                    const auto slot = static_cast<std::size_t>(
                        oc(t) * width + cursor[static_cast<std::size_t>(oc(t))]++);
                    st.inner_idx[slot] = ic(t);
                    st.values[slot] = t.value;
                }
                break;
            }
            case LayoutFamily::SlicedFibers:
                st = assemble_sliced(desc, outer_dim, ts);
                break;
        }
        return DescribedFormat(std::move(desc), std::move(domain), std::move(range),
                               std::move(st));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return desc_.outer == Axis::Row ? inner_rel_ : outer_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return desc_.outer == Axis::Row ? outer_rel_ : inner_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return desc_.name.c_str(); }

    /// Level-derived byte streams, unless a calibration was installed.
    [[nodiscard]] SpmvCostModel spmv_cost_model() const override {
        return derived_spmv_cost_model(desc_);
    }

    /// Calibration hook: replace the derived cost model with a measured one
    /// (the description itself is unchanged — only the planner's roofline
    /// charges move).
    void calibrate(SpmvCostModel measured) { desc_.calibrated = measured; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        // y[row] += e * x[col]: the destination walks the outer dimension
        // exactly when rows are outer.
        if (desc_.outer == Axis::Row) {
            apply_loops<true>(piece, x, y);
        } else {
            apply_loops<false>(piece, x, y);
        }
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        // y[col] += e * x[row]: destination-outer flips.
        if (desc_.outer == Axis::Row) {
            apply_loops<false>(piece, x, y);
        } else {
            apply_loops<true>(piece, x, y);
        }
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const bool row_outer = desc_.outer == Axis::Row;
        std::vector<Triplet<T>> ts;
        ts.reserve(entries_.size());
        const auto emit = [&](gidx o, gidx i, const T& v) {
            if (row_outer) {
                ts.push_back({o, i, v});
            } else {
                ts.push_back({i, o, v});
            }
        };
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const auto ku = static_cast<std::size_t>(k);
            switch (family_) {
                case LayoutFamily::PointerOuter: {
                    gidx fiber = 0; // located below; fall through to shared walk
                    const auto& ptr = *ptr_arr_;
                    auto it = std::upper_bound(ptr.begin() + 1, ptr.end(), k);
                    fiber = it - (ptr.begin() + 1);
                    emit(fiber, (*inner_arr_)[ku], entries_[ku]);
                    break;
                }
                case LayoutFamily::SortedCoords:
                    emit((*outer_arr_)[ku], (*inner_arr_)[ku], entries_[ku]);
                    break;
                case LayoutFamily::FullGrid:
                    if (entries_[ku] != T{}) emit(k / mod_, k % mod_, entries_[ku]);
                    break;
                case LayoutFamily::PaddedFibers:
                    if ((*inner_arr_)[ku] != kNoTarget)
                        emit(k / quot_, (*inner_arr_)[ku], entries_[ku]);
                    break;
                case LayoutFamily::SlicedFibers:
                    if ((*inner_arr_)[ku] != kNoTarget)
                        emit((*outer_arr_)[ku], (*inner_arr_)[ku], entries_[ku]);
                    break;
            }
        }
        return ts;
    }

    [[nodiscard]] const FormatDesc& desc() const noexcept { return desc_; }
    [[nodiscard]] LayoutFamily family() const noexcept { return family_; }
    [[nodiscard]] const std::vector<T>& entries() const noexcept { return entries_; }
    [[nodiscard]] const std::vector<gidx>& slice_offsets() const noexcept {
        return slice_offsets_;
    }
    [[nodiscard]] gidx padded_width() const noexcept { return quot_; }

private:
    /// SELL-C-σ assembly: σ-window occupancy sort, per-slice padding,
    /// column-major slots within a slice — the same algorithm (and therefore
    /// the same permutation and slot layout) as SellMatrix::from_triplets.
    static Storage assemble_sliced(const FormatDesc& desc, gidx nrows,
                                   const std::vector<Triplet<T>>& ts) {
        const gidx C = desc.slice_height;
        const gidx nslices = (nrows + C - 1) / C;
        std::vector<std::vector<std::pair<gidx, T>>> rows(static_cast<std::size_t>(nrows));
        for (const Triplet<T>& t : ts)
            rows[static_cast<std::size_t>(t.row)].emplace_back(t.col, t.value);

        std::vector<gidx> perm(static_cast<std::size_t>(nrows));
        std::iota(perm.begin(), perm.end(), 0);
        const gidx window = desc.sigma * C;
        for (gidx lo = 0; lo < nrows; lo += window) {
            const gidx hi = std::min(lo + window, nrows);
            std::sort(perm.begin() + lo, perm.begin() + hi, [&](gidx a, gidx b) {
                return rows[static_cast<std::size_t>(a)].size() >
                       rows[static_cast<std::size_t>(b)].size();
            });
        }

        std::vector<gidx> widths(static_cast<std::size_t>(nslices), 1);
        for (gidx s = 0; s < nslices; ++s) {
            for (gidx c = 0; c < C; ++c) {
                const gidx lane = s * C + c;
                if (lane >= nrows) break;
                widths[static_cast<std::size_t>(s)] =
                    std::max(widths[static_cast<std::size_t>(s)],
                             static_cast<gidx>(rows[static_cast<std::size_t>(
                                                        perm[static_cast<std::size_t>(lane)])]
                                                   .size()));
            }
        }
        Storage st;
        st.slice_offsets.assign(static_cast<std::size_t>(nslices) + 1, 0);
        for (gidx s = 0; s < nslices; ++s) {
            st.slice_offsets[static_cast<std::size_t>(s) + 1] =
                st.slice_offsets[static_cast<std::size_t>(s)] +
                widths[static_cast<std::size_t>(s)] * C;
        }
        const gidx total = st.slice_offsets.back();
        st.inner_idx.assign(static_cast<std::size_t>(total), kNoTarget);
        st.outer_idx.assign(static_cast<std::size_t>(total), kNoTarget);
        st.values.assign(static_cast<std::size_t>(total), T{});
        for (gidx s = 0; s < nslices; ++s) {
            const gidx base = st.slice_offsets[static_cast<std::size_t>(s)];
            for (gidx c = 0; c < C; ++c) {
                const gidx lane = s * C + c;
                if (lane >= nrows) continue;
                const gidx r = perm[static_cast<std::size_t>(lane)];
                const auto& entries = rows[static_cast<std::size_t>(r)];
                for (std::size_t j = 0; j < entries.size(); ++j) {
                    const auto slot =
                        static_cast<std::size_t>(base + static_cast<gidx>(j) * C + c);
                    st.inner_idx[slot] = entries[j].first;
                    st.outer_idx[slot] = r;
                    st.values[slot] = entries[j].second;
                }
            }
        }
        return st;
    }

    [[nodiscard]] const IndexSpace& outer_space() const {
        return desc_.outer == Axis::Row ? range_ : domain_;
    }
    [[nodiscard]] const IndexSpace& inner_space() const {
        return desc_.outer == Axis::Row ? domain_ : range_;
    }

    /// Structural validation of the description's promises against the raw
    /// arrays; every failure is a structured error naming the format.
    void validate_storage(const Storage& st) const {
        const std::string what = "described format '" + desc_.name + "'";
        const gidx outer_dim = outer_space().size();
        const gidx inner_dim = inner_space().size();
        const gidx nk = kernel_.size();
        switch (family_) {
            case LayoutFamily::PointerOuter:
                KDR_REQUIRE(static_cast<gidx>(st.inner_idx.size()) == nk, what,
                            ": inner coordinate array has ", st.inner_idx.size(),
                            " slots for a ", nk, "-slot kernel");
                validate_pointer_array(st.fiber_ptr, outer_dim, nk, what);
                validate_index_array(st.inner_idx, inner_dim, /*allow_padding=*/false, what);
                validate_fiber_order(st.fiber_ptr, st.inner_idx, desc_.inner_level.ordered,
                                     desc_.inner_level.unique, what);
                break;
            case LayoutFamily::SortedCoords:
                KDR_REQUIRE(static_cast<gidx>(st.outer_idx.size()) == nk &&
                                static_cast<gidx>(st.inner_idx.size()) == nk,
                            what, ": coordinate arrays (", st.outer_idx.size(), "/",
                            st.inner_idx.size(), ") must match the ", nk, "-slot kernel");
                validate_index_array(st.outer_idx, outer_dim, /*allow_padding=*/false, what);
                validate_index_array(st.inner_idx, inner_dim, /*allow_padding=*/false, what);
                validate_coord_order(st.outer_idx, st.inner_idx, desc_.outer_level.ordered,
                                     desc_.inner_level.ordered, desc_.inner_level.unique,
                                     what);
                break;
            case LayoutFamily::FullGrid:
                KDR_REQUIRE(nk == outer_dim * inner_dim, what, ": ", nk,
                            " values for a full ", outer_dim, "x", inner_dim, " grid");
                break;
            case LayoutFamily::PaddedFibers: {
                KDR_REQUIRE(st.width > 0, what, ": nonpositive fiber width");
                KDR_REQUIRE(nk == outer_dim * st.width, what, ": ", nk, " values for ",
                            outer_dim, " fibers of width ", st.width);
                KDR_REQUIRE(static_cast<gidx>(st.inner_idx.size()) == nk, what,
                            ": inner coordinate array size mismatch");
                validate_index_array(st.inner_idx, inner_dim, /*allow_padding=*/true, what);
                for (gidx f = 0; f < outer_dim; ++f) {
                    bool padding = false;
                    for (gidx s = 0; s < st.width; ++s) {
                        const auto ku = static_cast<std::size_t>(f * st.width + s);
                        if (st.inner_idx[ku] == kNoTarget) {
                            KDR_REQUIRE(entries_[ku] == T{}, what, ": padding slot ", ku,
                                        " carries a nonzero value");
                            padding = true;
                            continue;
                        }
                        KDR_REQUIRE(!padding, what, ": fiber ", f,
                                    " stores an entry after its padding began (slot ", ku,
                                    ")");
                        if (s > 0 && desc_.inner_level.ordered &&
                            st.inner_idx[ku - 1] != kNoTarget) {
                            if (desc_.inner_level.unique) {
                                KDR_REQUIRE(st.inner_idx[ku] > st.inner_idx[ku - 1], what,
                                            ": fiber ", f, " breaks ordered+unique at slot ",
                                            ku);
                            } else {
                                KDR_REQUIRE(st.inner_idx[ku] >= st.inner_idx[ku - 1], what,
                                            ": fiber ", f, " breaks ordered at slot ", ku);
                            }
                        }
                    }
                }
                break;
            }
            case LayoutFamily::SlicedFibers: {
                const gidx C = desc_.slice_height;
                const gidx nslices = (outer_dim + C - 1) / C;
                validate_pointer_array(st.slice_offsets, nslices, nk,
                                       what + " (slice offsets)");
                KDR_REQUIRE(static_cast<gidx>(st.outer_idx.size()) == nk &&
                                static_cast<gidx>(st.inner_idx.size()) == nk,
                            what, ": coordinate arrays must match the ", nk, "-slot kernel");
                validate_index_array(st.outer_idx, outer_dim, /*allow_padding=*/true, what);
                validate_index_array(st.inner_idx, inner_dim, /*allow_padding=*/true, what);
                for (std::size_t k = 0; k < entries_.size(); ++k) {
                    const bool pad_o = st.outer_idx[k] == kNoTarget;
                    const bool pad_i = st.inner_idx[k] == kNoTarget;
                    KDR_REQUIRE(pad_o == pad_i, what, ": slot ", k,
                                " pads one coordinate but not the other");
                    if (pad_i)
                        KDR_REQUIRE(entries_[k] == T{}, what, ": padding slot ", k,
                                    " carries a nonzero value");
                }
                break;
            }
        }
    }

    /// Derive the relation objects by composing the existing fast-path
    /// relation classes — this is what keeps `derive_plan` projections (and
    /// the projection cache) on the same code paths as the legacy formats.
    void build_relations(Storage st) {
        switch (family_) {
            case LayoutFamily::PointerOuter: {
                auto outer = std::make_shared<RowPtrRelation>(kernel_, outer_space(),
                                                              std::move(st.fiber_ptr));
                auto inner = std::make_shared<ArrayFunctionRelation>(
                    kernel_, inner_space(), std::move(st.inner_idx));
                ptr_arr_ = &outer->offsets();
                inner_arr_ = &inner->targets();
                outer_rel_ = std::move(outer);
                inner_rel_ = std::move(inner);
                break;
            }
            case LayoutFamily::SortedCoords:
            case LayoutFamily::SlicedFibers: {
                auto outer = std::make_shared<ArrayFunctionRelation>(
                    kernel_, outer_space(), std::move(st.outer_idx));
                auto inner = std::make_shared<ArrayFunctionRelation>(
                    kernel_, inner_space(), std::move(st.inner_idx));
                outer_arr_ = &outer->targets();
                inner_arr_ = &inner->targets();
                outer_rel_ = std::move(outer);
                inner_rel_ = std::move(inner);
                slice_offsets_ = std::move(st.slice_offsets);
                break;
            }
            case LayoutFamily::FullGrid: {
                mod_ = inner_space().size();
                outer_rel_ =
                    std::make_shared<QuotientRelation>(kernel_, outer_space(), mod_);
                inner_rel_ =
                    std::make_shared<RemainderRelation>(kernel_, inner_space(), mod_);
                break;
            }
            case LayoutFamily::PaddedFibers: {
                quot_ = st.width;
                outer_rel_ =
                    std::make_shared<QuotientRelation>(kernel_, outer_space(), quot_);
                auto inner = std::make_shared<ArrayFunctionRelation>(
                    kernel_, inner_space(), std::move(st.inner_idx));
                inner_arr_ = &inner->targets();
                inner_rel_ = std::move(inner);
                break;
            }
        }
    }

    /// The derived loop nests. `TargetOuter` says whether the destination
    /// vector is indexed by the outer coordinate (forward multiply of a
    /// row-outer format, transpose of a col-outer one). Each family walks
    /// slots in ascending kernel order — the accumulation order every legacy
    /// kernel uses — and skips sentinel slots exactly where its twin does.
    template <bool TargetOuter>
    void apply_loops(const IntervalSet& piece, VecView<const T> src, VecView<T> dst) const {
        const auto fma = [&](gidx o, gidx i, std::size_t ku) {
            if constexpr (TargetOuter) {
                dst[static_cast<std::size_t>(o)] +=
                    entries_[ku] * src[static_cast<std::size_t>(i)];
            } else {
                dst[static_cast<std::size_t>(i)] +=
                    entries_[ku] * src[static_cast<std::size_t>(o)];
            }
        };
        switch (family_) {
            case LayoutFamily::PointerOuter: {
                const auto& ptr = *ptr_arr_;
                const auto& idx = *inner_arr_;
                piece.for_each_interval([&](const Interval& iv) {
                    auto it = std::upper_bound(ptr.begin() + 1, ptr.end(), iv.lo);
                    gidx fiber = it - (ptr.begin() + 1);
                    for (gidx k = iv.lo; k < iv.hi; ++k) {
                        while (k >= ptr[static_cast<std::size_t>(fiber) + 1]) ++fiber;
                        const auto ku = static_cast<std::size_t>(k);
                        fma(fiber, idx[ku], ku);
                    }
                });
                break;
            }
            case LayoutFamily::SortedCoords: {
                const auto& outer = *outer_arr_;
                const auto& inner = *inner_arr_;
                piece.for_each_interval([&](const Interval& iv) {
                    for (gidx k = iv.lo; k < iv.hi; ++k) {
                        const auto ku = static_cast<std::size_t>(k);
                        fma(outer[ku], inner[ku], ku);
                    }
                });
                break;
            }
            case LayoutFamily::FullGrid: {
                piece.for_each_interval([&](const Interval& iv) {
                    for (gidx k = iv.lo; k < iv.hi; ++k)
                        fma(k / mod_, k % mod_, static_cast<std::size_t>(k));
                });
                break;
            }
            case LayoutFamily::PaddedFibers: {
                const auto& inner = *inner_arr_;
                piece.for_each_interval([&](const Interval& iv) {
                    for (gidx k = iv.lo; k < iv.hi; ++k) {
                        const auto ku = static_cast<std::size_t>(k);
                        if (inner[ku] == kNoTarget) continue;
                        fma(k / quot_, inner[ku], ku);
                    }
                });
                break;
            }
            case LayoutFamily::SlicedFibers: {
                const auto& outer = *outer_arr_;
                const auto& inner = *inner_arr_;
                piece.for_each_interval([&](const Interval& iv) {
                    for (gidx k = iv.lo; k < iv.hi; ++k) {
                        const auto ku = static_cast<std::size_t>(k);
                        if (inner[ku] == kNoTarget) continue;
                        fma(outer[ku], inner[ku], ku);
                    }
                });
                break;
            }
        }
    }

    FormatDesc desc_;
    LayoutFamily family_;
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> entries_;
    std::shared_ptr<const Relation> outer_rel_;
    std::shared_ptr<const Relation> inner_rel_;
    // Borrowed views into the relation objects' arrays (they own them; the
    // shared_ptrs above keep them alive for this object's lifetime).
    const std::vector<gidx>* ptr_arr_ = nullptr;
    const std::vector<gidx>* outer_arr_ = nullptr;
    const std::vector<gidx>* inner_arr_ = nullptr;
    gidx quot_ = 0; ///< PaddedFibers width
    gidx mod_ = 0;  ///< FullGrid inner dimension
    std::vector<gidx> slice_offsets_;
};

} // namespace kdr::sparse
