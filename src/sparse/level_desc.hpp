#pragma once

/// \file level_desc.hpp
/// Per-dimension level descriptions — the "bring your own formats" core.
/// Instead of hand-writing a format class (relations + loop nests +
/// validation + cost model, all duplicated nine times across the catalog of
/// paper Fig 3), a format is *described*: each matrix dimension gets a
/// `LevelDesc` saying how its coordinates are represented, and everything
/// else is derived by `DescribedFormat` (described.hpp). The vocabulary
/// follows Chou et al., "Format Abstraction for Sparse Tensor Algebra
/// Compilers":
///
///   Dense      — every coordinate of the dimension is present implicitly;
///                nothing is stored (the structural assumption K ⊇ R or D).
///   Compressed — coordinates are stored explicitly, grouped into fibers
///                (CSR's rowptr + colidx pair, or COO's sorted row array).
///   Singleton  — exactly one stored coordinate per kernel point, riding on
///                the enclosing level (COO's col array, ELL's padded slots).
///
/// The ordered/unique flags refine a level: `ordered` promises coordinates
/// appear in nondecreasing kernel order (within their fiber), `unique` that
/// no coordinate repeats within a fiber. Both are *verified* at construction
/// — a described format cannot silently lie about its structure.
///
/// Two kernel-space parameters extend the vocabulary to padded layouts:
/// `padded_width` fixes the number of slots per outer fiber (ELL/ELL', slots
/// beyond a fiber's occupancy carry the `kNoTarget` sentinel), and
/// `slice_height`/`sigma` request the SELL-C-σ slicing of the outer
/// dimension (σ-window occupancy sort, per-slice padding, column-major slot
/// order within a slice).
///
/// The five derivable layout families and their catalog instances:
///
///   family        outer level        inner level        instances
///   ------------- ------------------ ------------------ ----------------
///   PointerOuter  dense              compressed         csr, csc
///   SortedCoords  compressed(¬uniq)  singleton          coo, coot
///   FullGrid      dense              dense              dense
///   PaddedFibers  dense              singleton (padded) ell, ellt
///   SlicedFibers  dense (sliced)     singleton (padded) sell
///
/// A format's SpMV byte-stream profile is likewise derived from the levels
/// (one 8 B value per slot, 8 B per stored coordinate array, 8 B per fiber
/// for a pointer array, 16 B of y traffic per row); measured machines can
/// override it through `FormatDesc::calibrated` without touching the
/// derivation.

#include <cstdint>
#include <optional>
#include <string>

#include "sparse/linear_operator.hpp"

namespace kdr::sparse {

/// How one matrix dimension's coordinates are represented in storage.
enum class LevelKind : std::uint8_t { Dense, Compressed, Singleton };

/// Description of one dimension: representation plus structural promises.
struct LevelDesc {
    LevelKind kind = LevelKind::Dense;
    bool ordered = true; ///< coordinates nondecreasing along kernel order (per fiber)
    bool unique = true;  ///< no repeated coordinate within a fiber
};

/// Which matrix dimension a level walks.
enum class Axis : std::uint8_t { Row, Col };

/// A complete format description: the outer dimension (fiber axis), two
/// level descriptions, and the kernel-space parameters of the padded
/// families. ~10 lines describe what used to be a ~150-line class.
struct FormatDesc {
    std::string name;     ///< format_name() of the derived operator
    Axis outer = Axis::Row;
    LevelDesc outer_level;
    LevelDesc inner_level;
    gidx padded_width = 0; ///< PaddedFibers: slots per fiber (0 = max occupancy at build)
    gidx slice_height = 0; ///< SlicedFibers: rows per slice C (0 = not sliced)
    gidx sigma = 1;        ///< SlicedFibers: occupancy-sort window, in slices
    /// Calibration hook: a measured byte-stream profile overrides the model
    /// derived from the level kinds (see derived_spmv_cost_model).
    std::optional<SpmvCostModel> calibrated;
};

/// The loop-nest/storage family a description derives to.
enum class LayoutFamily : std::uint8_t {
    PointerOuter, ///< fiber-pointer array + stored inner coordinates (CSR/CSC)
    SortedCoords, ///< stored outer + inner coordinate arrays (COO/COO')
    FullGrid,     ///< K = outer × inner, both implicit (dense)
    PaddedFibers, ///< fixed-width fibers, stored inner coordinates + sentinel (ELL/ELL')
    SlicedFibers, ///< SELL-C-σ: sliced outer, both coordinates stored + sentinel
};

/// Classify a description into its layout family, or throw a structured
/// error naming the unsupported level combination.
[[nodiscard]] LayoutFamily classify_format(const FormatDesc& desc);

/// Human-readable level spelling, e.g. "compressed(¬unique)" — used in
/// diagnostics and the DESIGN.md description table.
[[nodiscard]] std::string describe_level(const LevelDesc& level);

/// One-line description of the whole format (family + levels + parameters).
[[nodiscard]] std::string describe_format(const FormatDesc& desc);

/// SpMV byte-stream profile derived from the level kinds alone: 8 B value
/// per slot, plus 8 B per stored coordinate array per entry; pointer arrays
/// charge 8 B per fiber; y read/write is 16 B per row. PointerOuter derives
/// exactly the historical CSR default {16, 8, 24}.
[[nodiscard]] SpmvCostModel derived_spmv_cost_model(const FormatDesc& desc);

/// Structural validation helpers (throw structured errors on violation).
/// `what` names the format in diagnostics.

/// Fiber-pointer array: size fibers+1, starts at 0, nondecreasing, ends at
/// kernel_size.
void validate_pointer_array(const std::vector<gidx>& ptr, gidx fibers, gidx kernel_size,
                            const std::string& what);

/// Stored coordinate array: every value in [0, dim), or kNoTarget when
/// `allow_padding`.
void validate_index_array(const std::vector<gidx>& idx, gidx dim, bool allow_padding,
                          const std::string& what);

/// ordered/unique promises of inner coordinates within each pointer fiber:
/// strictly increasing when unique, nondecreasing otherwise.
void validate_fiber_order(const std::vector<gidx>& ptr, const std::vector<gidx>& idx,
                          bool ordered, bool unique, const std::string& what);

/// ordered/unique promises of a SortedCoords pair: outer nondecreasing, and
/// within equal-outer runs inner strictly increasing (unique) or
/// nondecreasing.
void validate_coord_order(const std::vector<gidx>& outer, const std::vector<gidx>& inner,
                          bool outer_ordered, bool inner_ordered, bool inner_unique,
                          const std::string& what);

} // namespace kdr::sparse
