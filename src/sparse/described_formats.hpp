#pragma once

/// \file described_formats.hpp
/// The level-description catalog: every migrated format of paper Fig 3
/// re-expressed as a ~10-line `FormatDesc` instead of a hand-written class.
/// The legacy classes (csr.hpp, coo.hpp, ...) remain compiled as reference
/// twins; the differential golden suite (`ctest -L formats`) pins each
/// description here bitwise against its twin.
///
/// `desc_coot` is the catalog's proof that new formats need no new code: a
/// column-major COO that never existed as a class — described, validated,
/// and solving quickstart systems purely from its two level descriptions.

#include <memory>
#include <string>
#include <vector>

#include "sparse/described.hpp"
#include "sparse/level_desc.hpp"

namespace kdr::sparse {

/// CSR: dense rows, compressed (ordered+unique) columns.
inline FormatDesc desc_csr() {
    FormatDesc d;
    d.name = "csr";
    d.outer = Axis::Row;
    d.outer_level = {LevelKind::Dense, true, true};
    d.inner_level = {LevelKind::Compressed, true, true};
    return d;
}

/// CSC: dense columns, compressed (ordered+unique) rows.
inline FormatDesc desc_csc() {
    FormatDesc d;
    d.name = "csc";
    d.outer = Axis::Col;
    d.outer_level = {LevelKind::Dense, true, true};
    d.inner_level = {LevelKind::Compressed, true, true};
    return d;
}

/// COO: row-major sorted coordinate pairs; the outer (row) level repeats
/// across a fiber, hence ¬unique.
inline FormatDesc desc_coo() {
    FormatDesc d;
    d.name = "coo";
    d.outer = Axis::Row;
    d.outer_level = {LevelKind::Compressed, true, false};
    d.inner_level = {LevelKind::Singleton, true, true};
    return d;
}

/// COO', column-major — a brand-new format with no legacy class: flip the
/// fiber axis of COO and everything (relations, kernels, validation, cost
/// model) is derived.
inline FormatDesc desc_coot() {
    FormatDesc d;
    d.name = "coot";
    d.outer = Axis::Col;
    d.outer_level = {LevelKind::Compressed, true, false};
    d.inner_level = {LevelKind::Singleton, true, true};
    return d;
}

/// Dense: both levels implicit, K = R x D.
inline FormatDesc desc_dense() {
    FormatDesc d;
    d.name = "dense";
    d.outer = Axis::Row;
    d.outer_level = {LevelKind::Dense, true, true};
    d.inner_level = {LevelKind::Dense, true, true};
    return d;
}

/// ELL: fixed-width row fibers, padded with the kNoTarget sentinel.
/// width = 0 pads to the maximum occupancy found at assembly.
inline FormatDesc desc_ell(gidx width = 0) {
    FormatDesc d;
    d.name = "ell";
    d.outer = Axis::Row;
    d.outer_level = {LevelKind::Dense, true, true};
    d.inner_level = {LevelKind::Singleton, true, true};
    d.padded_width = width;
    return d;
}

/// ELL', column-major ELL (fixed-width column fibers).
inline FormatDesc desc_ellt(gidx width = 0) {
    FormatDesc d;
    d.name = "ellt";
    d.outer = Axis::Col;
    d.outer_level = {LevelKind::Dense, true, true};
    d.inner_level = {LevelKind::Singleton, true, true};
    d.padded_width = width;
    return d;
}

/// SELL-C-σ: rows sliced C at a time, σ-window occupancy sort; the
/// permutation makes the padded singleton level unordered.
inline FormatDesc desc_sell(gidx slice_height = 4, gidx sigma = 8) {
    FormatDesc d;
    d.name = "sell";
    d.outer = Axis::Row;
    d.outer_level = {LevelKind::Dense, false, true};
    d.inner_level = {LevelKind::Singleton, true, true};
    d.slice_height = slice_height;
    d.sigma = sigma;
    return d;
}

/// Every description in the catalog (padded/sliced instances use their
/// default parameters).
inline std::vector<FormatDesc> described_catalog() {
    return {desc_csr(), desc_csc(),  desc_coo(), desc_coot(),
            desc_dense(), desc_ell(), desc_ellt(), desc_sell()};
}

/// Look a description up by name, or throw a structured error listing the
/// catalog.
inline FormatDesc find_described(const std::string& name) {
    for (FormatDesc& d : described_catalog()) {
        if (d.name == name) return std::move(d);
    }
    std::string known;
    for (const FormatDesc& d : described_catalog()) {
        if (!known.empty()) known += ", ";
        known += d.name;
    }
    KDR_REQUIRE(false, "no described format named '", name, "' (catalog: ", known, ")");
    return {}; // unreachable
}

/// Assemble a described operator from triplets.
template <typename T>
std::shared_ptr<DescribedFormat<T>> make_described(FormatDesc desc, IndexSpace domain,
                                                   IndexSpace range,
                                                   std::vector<Triplet<T>> ts) {
    return std::make_shared<DescribedFormat<T>>(DescribedFormat<T>::from_triplets(
        std::move(desc), std::move(domain), std::move(range), std::move(ts)));
}

/// Assemble a described operator by catalog name.
template <typename T>
std::shared_ptr<DescribedFormat<T>> make_described(const std::string& name, IndexSpace domain,
                                                   IndexSpace range,
                                                   std::vector<Triplet<T>> ts) {
    return make_described<T>(find_described(name), std::move(domain), std::move(range),
                             std::move(ts));
}

} // namespace kdr::sparse
