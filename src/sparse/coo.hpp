#pragma once

/// \file coo.hpp
/// COO format (paper Fig 3): no structural assumptions; both relations are
/// stored index arrays `row : K → R`, `col : K → D`. The most general
/// explicit format — any kernel-space partition is usable directly, and
/// multiply-by-piece needs no row lookup.

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class CooMatrix final : public LinearOperator<T> {
public:
    /// Build from parallel arrays (entries[k] at (rows[k], cols[k])).
    CooMatrix(IndexSpace domain, IndexSpace range, std::vector<gidx> rows,
              std::vector<gidx> cols, std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(entries.size()), "coo_kernel")),
          entries_(std::move(entries)) {
        KDR_REQUIRE(rows.size() == entries_.size() && cols.size() == entries_.size(),
                    "CooMatrix: rows/cols/entries must have equal lengths (", rows.size(), "/",
                    cols.size(), "/", entries_.size(), ")");
        row_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, range_, std::move(rows));
        col_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, domain_, std::move(cols));
    }

    /// Build from triplets (order preserved; duplicates kept — they sum).
    static CooMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                   const std::vector<Triplet<T>>& ts) {
        std::vector<gidx> rows;
        std::vector<gidx> cols;
        std::vector<T> vals;
        rows.reserve(ts.size());
        cols.reserve(ts.size());
        vals.reserve(ts.size());
        for (const Triplet<T>& t : ts) {
            rows.push_back(t.row);
            cols.push_back(t.col);
            vals.push_back(t.value);
        }
        return CooMatrix(std::move(domain), std::move(range), std::move(rows), std::move(cols),
                         std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "coo"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& rows = row_rel_->targets();
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(rows[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(cols[ku])];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& rows = row_rel_->targets();
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(cols[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(rows[ku])];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& rows = row_rel_->targets();
        const auto& cols = col_rel_->targets();
        std::vector<Triplet<T>> ts;
        ts.reserve(entries_.size());
        for (std::size_t k = 0; k < entries_.size(); ++k)
            ts.push_back({rows[k], cols[k], entries_[k]});
        return ts;
    }

    [[nodiscard]] const std::vector<T>& entries() const noexcept { return entries_; }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> entries_;
    std::shared_ptr<ArrayFunctionRelation> row_rel_;
    std::shared_ptr<ArrayFunctionRelation> col_rel_;
};

} // namespace kdr
