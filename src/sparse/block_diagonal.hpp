#pragma once

/// \file block_diagonal.hpp
/// Block-diagonal operators over arbitrary index subsets: a list of dense
/// blocks, each acting on one (possibly non-contiguous) subset of a square
/// space. The building block of block-Jacobi preconditioning — and another
/// demonstration that a "format" in KDR is whatever can describe its
/// relations: here the kernel space is the concatenation of b_i × b_i dense
/// blocks and both relations map kernel slots through the subsets' rank
/// order.

#include <memory>
#include <span>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

/// In-place Gauss-Jordan inversion with partial pivoting of a dense
/// row-major b×b matrix. Throws on (numerical) singularity.
template <typename T>
void invert_dense(std::vector<T>& a, gidx b) {
    KDR_REQUIRE(static_cast<gidx>(a.size()) == b * b, "invert_dense: size mismatch");
    std::vector<T> inv(static_cast<std::size_t>(b * b), T{});
    for (gidx i = 0; i < b; ++i) inv[static_cast<std::size_t>(i * b + i)] = T{1};
    auto at = [&](std::vector<T>& m, gidx r, gidx c) -> T& {
        return m[static_cast<std::size_t>(r * b + c)];
    };
    for (gidx col = 0; col < b; ++col) {
        // Partial pivot.
        gidx pivot = col;
        for (gidx r = col + 1; r < b; ++r) {
            if (std::abs(at(a, r, col)) > std::abs(at(a, pivot, col))) pivot = r;
        }
        KDR_REQUIRE(at(a, pivot, col) != T{}, "invert_dense: singular block (column ", col,
                    ")");
        if (pivot != col) {
            for (gidx c = 0; c < b; ++c) {
                std::swap(at(a, pivot, c), at(a, col, c));
                std::swap(at(inv, pivot, c), at(inv, col, c));
            }
        }
        const T d = at(a, col, col);
        for (gidx c = 0; c < b; ++c) {
            at(a, col, c) /= d;
            at(inv, col, c) /= d;
        }
        for (gidx r = 0; r < b; ++r) {
            if (r == col) continue;
            const T f = at(a, r, col);
            if (f == T{}) continue;
            for (gidx c = 0; c < b; ++c) {
                at(a, r, c) -= f * at(a, col, c);
                at(inv, r, c) -= f * at(inv, col, c);
            }
        }
    }
    a = std::move(inv);
}

template <typename T>
class BlockDiagonalOperator final : public LinearOperator<T> {
public:
    struct Block {
        IntervalSet subset;    ///< the rows/cols this block acts on
        std::vector<T> values; ///< dense row-major, subset.volume()² entries
    };

    BlockDiagonalOperator(IndexSpace space, std::vector<Block> blocks)
        : space_(std::move(space)), blocks_(std::move(blocks)) {
        gidx total = 0;
        for (const Block& blk : blocks_) {
            const gidx b = blk.subset.volume();
            KDR_REQUIRE(b > 0, "BlockDiagonalOperator: empty block subset");
            KDR_REQUIRE(static_cast<gidx>(blk.values.size()) == b * b,
                        "BlockDiagonalOperator: block of ", b, " rows needs ", b * b,
                        " values, got ", blk.values.size());
            KDR_REQUIRE(blk.subset.bounds().hi <= space_.size(),
                        "BlockDiagonalOperator: block exceeds space");
            total += b * b;
        }
        kernel_ = IndexSpace::create(total, "blockdiag_kernel");
        build_relations();
    }

    [[nodiscard]] const IndexSpace& domain() const override { return space_; }
    [[nodiscard]] const IndexSpace& range() const override { return space_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "block-diagonal"; }
    [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        apply(piece, x, y, /*transpose=*/false);
    }
    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        apply(piece, x, y, /*transpose=*/true);
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        std::vector<Triplet<T>> ts;
        for (const Block& blk : blocks_) {
            const auto pts = blk.subset.to_points();
            const gidx b = static_cast<gidx>(pts.size());
            for (gidx r = 0; r < b; ++r) {
                for (gidx c = 0; c < b; ++c) {
                    const T v = blk.values[static_cast<std::size_t>(r * b + c)];
                    if (v != T{}) {
                        ts.push_back({pts[static_cast<std::size_t>(r)],
                                      pts[static_cast<std::size_t>(c)], v});
                    }
                }
            }
        }
        return coalesce_triplets(std::move(ts));
    }

private:
    void build_relations() {
        std::vector<std::pair<gidx, gidx>> row_pairs, col_pairs;
        gidx base = 0;
        for (const Block& blk : blocks_) {
            const auto pts = blk.subset.to_points();
            const gidx b = static_cast<gidx>(pts.size());
            for (gidx r = 0; r < b; ++r) {
                for (gidx c = 0; c < b; ++c) {
                    const gidx k = base + r * b + c;
                    row_pairs.emplace_back(k, pts[static_cast<std::size_t>(r)]);
                    col_pairs.emplace_back(k, pts[static_cast<std::size_t>(c)]);
                }
            }
            base += b * b;
        }
        row_rel_ = std::make_shared<MaterializedRelation>(kernel_, space_, std::move(row_pairs));
        col_rel_ = std::make_shared<MaterializedRelation>(kernel_, space_, std::move(col_pairs));
    }

    void apply(const IntervalSet& piece, VecView<const T> x, VecView<T> y,
               bool transpose) const {
        gidx base = 0;
        for (const Block& blk : blocks_) {
            const gidx b = blk.subset.volume();
            const IntervalSet kpiece =
                piece.set_intersection(IntervalSet(base, base + b * b));
            if (!kpiece.empty()) {
                const auto pts = blk.subset.to_points();
                kpiece.for_each([&](gidx k) {
                    const gidx within = k - base;
                    const gidx r = within / b;
                    const gidx c = within % b;
                    const gidx out = transpose ? pts[static_cast<std::size_t>(c)]
                                               : pts[static_cast<std::size_t>(r)];
                    const gidx in = transpose ? pts[static_cast<std::size_t>(r)]
                                              : pts[static_cast<std::size_t>(c)];
                    y[static_cast<std::size_t>(out)] +=
                        blk.values[static_cast<std::size_t>(within)] *
                        x[static_cast<std::size_t>(in)];
                });
            }
            base += b * b;
        }
    }

    IndexSpace space_;
    std::vector<Block> blocks_;
    IndexSpace kernel_;
    std::shared_ptr<MaterializedRelation> row_rel_;
    std::shared_ptr<MaterializedRelation> col_rel_;
};

} // namespace kdr
