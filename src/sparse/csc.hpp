#pragma once

/// \file csc.hpp
/// CSC format (paper Fig 3): the transpose-mirror of CSR — column relation is
/// `colptr : D → [K, K]`, row relation is a stored array `row : K → R`.

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class CscMatrix final : public LinearOperator<T> {
public:
    /// Build from CSC arrays. `colptr` has domain.size()+1 entries.
    CscMatrix(IndexSpace domain, IndexSpace range, std::vector<gidx> colptr,
              std::vector<gidx> rows, std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(entries.size()), "csc_kernel")),
          entries_(std::move(entries)) {
        KDR_REQUIRE(rows.size() == entries_.size(), "CscMatrix: rows/entries length mismatch");
        col_rel_ = std::make_shared<RowPtrRelation>(kernel_, domain_, std::move(colptr));
        row_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, range_, std::move(rows));
    }

    /// Build from triplets (coalesced, column-major kernel order).
    static CscMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                   std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        std::sort(ts.begin(), ts.end(), [](const Triplet<T>& a, const Triplet<T>& b) {
            return a.col != b.col ? a.col < b.col : a.row < b.row;
        });
        std::vector<gidx> colptr(static_cast<std::size_t>(domain.size()) + 1, 0);
        std::vector<gidx> rows;
        std::vector<T> vals;
        rows.reserve(ts.size());
        vals.reserve(ts.size());
        for (const Triplet<T>& t : ts) {
            KDR_REQUIRE(t.col >= 0 && t.col < domain.size(), "CscMatrix: col ", t.col,
                        " out of range");
            ++colptr[static_cast<std::size_t>(t.col) + 1];
            rows.push_back(t.row);
            vals.push_back(t.value);
        }
        for (std::size_t i = 1; i < colptr.size(); ++i) colptr[i] += colptr[i - 1];
        return CscMatrix(std::move(domain), std::move(range), std::move(colptr), std::move(rows),
                         std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        // RowPtrRelation already exposes the K-side as its source, so the
        // colptr map doubles directly as the K×D column relation.
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "csc"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& colptr = col_rel_->offsets();
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            auto it = std::upper_bound(colptr.begin() + 1, colptr.end(), iv.lo);
            gidx col = it - (colptr.begin() + 1);
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                while (k >= colptr[static_cast<std::size_t>(col) + 1]) ++col;
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(rows[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(col)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& colptr = col_rel_->offsets();
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            auto it = std::upper_bound(colptr.begin() + 1, colptr.end(), iv.lo);
            gidx col = it - (colptr.begin() + 1);
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                while (k >= colptr[static_cast<std::size_t>(col) + 1]) ++col;
                const auto ku = static_cast<std::size_t>(k);
                y[static_cast<std::size_t>(col)] +=
                    entries_[ku] * x[static_cast<std::size_t>(rows[ku])];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& colptr = col_rel_->offsets();
        const auto& rows = row_rel_->targets();
        std::vector<Triplet<T>> ts;
        ts.reserve(entries_.size());
        for (gidx j = 0; j < domain_.size(); ++j) {
            for (gidx k = colptr[static_cast<std::size_t>(j)];
                 k < colptr[static_cast<std::size_t>(j) + 1]; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                ts.push_back({rows[ku], j, entries_[ku]});
            }
        }
        return ts;
    }

    [[nodiscard]] const std::vector<gidx>& colptr() const noexcept { return col_rel_->offsets(); }
    [[nodiscard]] const std::vector<gidx>& rows() const noexcept { return row_rel_->targets(); }
    [[nodiscard]] const std::vector<T>& entries() const noexcept { return entries_; }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> entries_;
    std::shared_ptr<RowPtrRelation> col_rel_;      // D -> [K,K]
    std::shared_ptr<ArrayFunctionRelation> row_rel_; // K -> R
};

} // namespace kdr
