#pragma once

/// \file sell.hpp
/// SELL-C-σ ("sliced ELL") — the modern SIMD/GPU-friendly format of
/// Kreutzer et al., expressed in the KDR framework to show the catalog of
/// Fig 3 is open-ended. Rows are grouped into slices of C; within a sorting
/// window of σ slices·C rows, rows are ordered by descending occupancy so
/// each slice pads only to its own longest row.
///
/// KDR view: the kernel space is the concatenation of slice blocks, slice s
/// occupying width(s)·C slots laid out column-major within the slice
/// (slot = slice_offset(s)·C + j·C + c for lane c, position j). Both
/// relations are stored index arrays here (`row` must be stored anyway
/// because of the σ-window permutation; `col` as in ELL, with the padding
/// sentinel); a production implementation could supply an analytic row
/// relation from (slice_ptr, permutation) alone.

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class SellMatrix final : public LinearOperator<T> {
public:
    /// Build from triplets with slice height C and sorting window σ (in
    /// slices). σ = 1 disables sorting; σ covering all slices is full
    /// occupancy sort.
    static SellMatrix from_triplets(IndexSpace domain, IndexSpace range, gidx slice_height,
                                    gidx sigma, std::vector<Triplet<T>> ts) {
        KDR_REQUIRE(slice_height > 0, "SellMatrix: nonpositive slice height");
        KDR_REQUIRE(sigma > 0, "SellMatrix: nonpositive sorting window");
        ts = coalesce_triplets(std::move(ts));
        const gidx nrows = range.size();
        const gidx nslices = (nrows + slice_height - 1) / slice_height;

        // Per-row entry lists.
        std::vector<std::vector<std::pair<gidx, T>>> rows(static_cast<std::size_t>(nrows));
        for (const Triplet<T>& t : ts) {
            KDR_REQUIRE(t.row >= 0 && t.row < nrows, "SellMatrix: row out of range");
            rows[static_cast<std::size_t>(t.row)].emplace_back(t.col, t.value);
        }

        // σ-window occupancy sort: permutation maps lane position -> row.
        std::vector<gidx> perm(static_cast<std::size_t>(nrows));
        std::iota(perm.begin(), perm.end(), 0);
        const gidx window = sigma * slice_height;
        for (gidx lo = 0; lo < nrows; lo += window) {
            const gidx hi = std::min(lo + window, nrows);
            std::sort(perm.begin() + lo, perm.begin() + hi, [&](gidx a, gidx b) {
                return rows[static_cast<std::size_t>(a)].size() >
                       rows[static_cast<std::size_t>(b)].size();
            });
        }

        // Slice widths and offsets.
        std::vector<gidx> widths(static_cast<std::size_t>(nslices), 1);
        for (gidx s = 0; s < nslices; ++s) {
            for (gidx c = 0; c < slice_height; ++c) {
                const gidx lane = s * slice_height + c;
                if (lane >= nrows) break;
                widths[static_cast<std::size_t>(s)] = std::max(
                    widths[static_cast<std::size_t>(s)],
                    static_cast<gidx>(rows[static_cast<std::size_t>(perm[static_cast<std::size_t>(lane)])].size()));
            }
        }
        std::vector<gidx> slice_offsets(static_cast<std::size_t>(nslices) + 1, 0);
        for (gidx s = 0; s < nslices; ++s) {
            slice_offsets[static_cast<std::size_t>(s) + 1] =
                slice_offsets[static_cast<std::size_t>(s)] +
                widths[static_cast<std::size_t>(s)] * slice_height;
        }

        // Fill column/row/value arrays, column-major within each slice.
        const gidx total = slice_offsets.back();
        std::vector<gidx> cols(static_cast<std::size_t>(total), kNoTarget);
        std::vector<gidx> row_ids(static_cast<std::size_t>(total), kNoTarget);
        std::vector<T> vals(static_cast<std::size_t>(total), T{});
        for (gidx s = 0; s < nslices; ++s) {
            const gidx base = slice_offsets[static_cast<std::size_t>(s)];
            for (gidx c = 0; c < slice_height; ++c) {
                const gidx lane = s * slice_height + c;
                if (lane >= nrows) continue;
                const gidx r = perm[static_cast<std::size_t>(lane)];
                const auto& entries = rows[static_cast<std::size_t>(r)];
                for (std::size_t j = 0; j < entries.size(); ++j) {
                    const auto slot =
                        static_cast<std::size_t>(base + static_cast<gidx>(j) * slice_height + c);
                    cols[slot] = entries[j].first;
                    row_ids[slot] = r;
                    vals[slot] = entries[j].second;
                }
            }
        }
        return SellMatrix(std::move(domain), std::move(range), slice_height, sigma,
                          std::move(slice_offsets), std::move(cols), std::move(row_ids),
                          std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "sell"; }
    [[nodiscard]] gidx slice_height() const noexcept { return c_; }
    [[nodiscard]] gidx sigma() const noexcept { return sigma_; }
    [[nodiscard]] const std::vector<gidx>& slice_offsets() const noexcept {
        return slice_offsets_;
    }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& cols = col_rel_->targets();
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                if (cols[ku] == kNoTarget) continue;
                y[static_cast<std::size_t>(rows[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(cols[ku])];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& cols = col_rel_->targets();
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                if (cols[ku] == kNoTarget) continue;
                y[static_cast<std::size_t>(cols[ku])] +=
                    entries_[ku] * x[static_cast<std::size_t>(rows[ku])];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& cols = col_rel_->targets();
        const auto& rows = row_rel_->targets();
        std::vector<Triplet<T>> ts;
        for (std::size_t k = 0; k < entries_.size(); ++k) {
            if (cols[k] != kNoTarget) ts.push_back({rows[k], cols[k], entries_[k]});
        }
        return ts;
    }

private:
    SellMatrix(IndexSpace domain, IndexSpace range, gidx slice_height, gidx sigma,
               std::vector<gidx> slice_offsets, std::vector<gidx> cols,
               std::vector<gidx> row_ids, std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(entries.size()), "sell_kernel")),
          c_(slice_height),
          sigma_(sigma),
          slice_offsets_(std::move(slice_offsets)),
          entries_(std::move(entries)) {
        col_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, domain_, std::move(cols));
        row_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, range_, std::move(row_ids));
    }

    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    gidx c_;
    gidx sigma_;
    std::vector<gidx> slice_offsets_;
    std::vector<T> entries_;
    std::shared_ptr<ArrayFunctionRelation> col_rel_;
    std::shared_ptr<ArrayFunctionRelation> row_rel_;
};

} // namespace kdr
