#include "sparse/level_desc.hpp"

#include "sparse/relations.hpp"
#include "support/error.hpp"

namespace kdr::sparse {

LayoutFamily classify_format(const FormatDesc& desc) {
    const LevelKind o = desc.outer_level.kind;
    const LevelKind i = desc.inner_level.kind;
    if (desc.slice_height > 0) {
        KDR_REQUIRE(o == LevelKind::Dense && i == LevelKind::Singleton,
                    "format '", desc.name, "': slicing requires dense outer + singleton "
                    "inner levels, got ", describe_format(desc));
        KDR_REQUIRE(desc.outer == Axis::Row, "format '", desc.name,
                    "': sliced layouts slice rows; describe the transpose instead");
        KDR_REQUIRE(desc.sigma > 0, "format '", desc.name, "': nonpositive sort window");
        return LayoutFamily::SlicedFibers;
    }
    KDR_REQUIRE(desc.padded_width >= 0, "format '", desc.name, "': negative padded_width");
    if (o == LevelKind::Dense && i == LevelKind::Compressed) {
        KDR_REQUIRE(desc.padded_width == 0, "format '", desc.name,
                    "': compressed inner level cannot be padded");
        return LayoutFamily::PointerOuter;
    }
    if (o == LevelKind::Compressed && i == LevelKind::Singleton) {
        KDR_REQUIRE(!desc.outer_level.unique, "format '", desc.name,
                    "': a compressed outer level with singleton inner repeats outer "
                    "coordinates across a fiber; declare it ¬unique");
        KDR_REQUIRE(desc.padded_width == 0, "format '", desc.name,
                    "': coordinate layouts store no padding");
        return LayoutFamily::SortedCoords;
    }
    if (o == LevelKind::Dense && i == LevelKind::Dense) {
        KDR_REQUIRE(desc.padded_width == 0, "format '", desc.name,
                    "': a dense inner level spans the whole dimension; padded_width "
                    "is meaningless");
        return LayoutFamily::FullGrid;
    }
    if (o == LevelKind::Dense && i == LevelKind::Singleton) return LayoutFamily::PaddedFibers;
    KDR_REQUIRE(false, "format '", desc.name, "': no loop nest derivable from ",
                describe_format(desc));
    return LayoutFamily::FullGrid; // unreachable
}

std::string describe_level(const LevelDesc& level) {
    std::string out;
    switch (level.kind) {
        case LevelKind::Dense: out = "dense"; break;
        case LevelKind::Compressed: out = "compressed"; break;
        case LevelKind::Singleton: out = "singleton"; break;
    }
    if (!level.ordered || !level.unique) {
        out += "(";
        if (!level.ordered) out += "unordered";
        if (!level.ordered && !level.unique) out += ",";
        if (!level.unique) out += "nonunique";
        out += ")";
    }
    return out;
}

std::string describe_format(const FormatDesc& desc) {
    std::string out = desc.outer == Axis::Row ? "rows:" : "cols:";
    out += describe_level(desc.outer_level);
    out += desc.outer == Axis::Row ? " x cols:" : " x rows:";
    out += describe_level(desc.inner_level);
    if (desc.padded_width > 0) out += " width=" + std::to_string(desc.padded_width);
    if (desc.slice_height > 0) {
        out += " C=" + std::to_string(desc.slice_height) +
               " sigma=" + std::to_string(desc.sigma);
    }
    return out;
}

SpmvCostModel derived_spmv_cost_model(const FormatDesc& desc) {
    if (desc.calibrated) return *desc.calibrated;
    SpmvCostModel m;
    m.matrix_bytes_per_entry = 8.0; // the stored value itself
    m.gather_bytes_per_entry = 8.0; // one indexed x read per slot
    m.bytes_per_row = 16.0;         // y read + write
    switch (classify_format(desc)) {
        case LayoutFamily::PointerOuter:
            m.matrix_bytes_per_entry += 8.0; // inner coordinate array
            m.bytes_per_row += 8.0;          // fiber-pointer entry
            break;
        case LayoutFamily::SortedCoords:
            m.matrix_bytes_per_entry += 16.0; // both coordinate arrays
            break;
        case LayoutFamily::FullGrid:
            break; // structural assumption, empty metadata
        case LayoutFamily::PaddedFibers:
            m.matrix_bytes_per_entry += 8.0; // inner coordinate array (padded)
            break;
        case LayoutFamily::SlicedFibers:
            // Both coordinates stored per slot; slice offsets amortize away.
            m.matrix_bytes_per_entry += 16.0;
            break;
    }
    return m;
}

void validate_pointer_array(const std::vector<gidx>& ptr, gidx fibers, gidx kernel_size,
                            const std::string& what) {
    KDR_REQUIRE(static_cast<gidx>(ptr.size()) == fibers + 1, what, ": fiber-pointer array has ",
                ptr.size(), " entries for ", fibers, " fibers");
    KDR_REQUIRE(ptr.front() == 0, what, ": fiber pointers must start at 0, got ", ptr.front());
    for (std::size_t f = 1; f < ptr.size(); ++f) {
        KDR_REQUIRE(ptr[f] >= ptr[f - 1], what, ": fiber pointers decrease at fiber ", f - 1,
                    " (", ptr[f - 1], " -> ", ptr[f], ")");
    }
    KDR_REQUIRE(ptr.back() == kernel_size, what, ": fiber pointers end at ", ptr.back(),
                " but the kernel space has ", kernel_size, " slots");
}

void validate_index_array(const std::vector<gidx>& idx, gidx dim, bool allow_padding,
                          const std::string& what) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == kNoTarget) {
            KDR_REQUIRE(allow_padding, what, ": padding sentinel at slot ", k,
                        " in an unpadded level");
            continue;
        }
        KDR_REQUIRE(idx[k] >= 0 && idx[k] < dim, what, ": coordinate ", idx[k], " at slot ",
                    k, " outside [0, ", dim, ")");
    }
}

void validate_fiber_order(const std::vector<gidx>& ptr, const std::vector<gidx>& idx,
                          bool ordered, bool unique, const std::string& what) {
    if (!ordered) return;
    for (std::size_t f = 0; f + 1 < ptr.size(); ++f) {
        for (gidx k = ptr[f] + 1; k < ptr[f + 1]; ++k) {
            const gidx prev = idx[static_cast<std::size_t>(k - 1)];
            const gidx cur = idx[static_cast<std::size_t>(k)];
            if (unique) {
                KDR_REQUIRE(cur > prev, what, ": fiber ", f,
                            " breaks the ordered+unique promise at slot ", k, " (", prev,
                            " then ", cur, ")");
            } else {
                KDR_REQUIRE(cur >= prev, what, ": fiber ", f,
                            " breaks the ordered promise at slot ", k, " (", prev, " then ",
                            cur, ")");
            }
        }
    }
}

void validate_coord_order(const std::vector<gidx>& outer, const std::vector<gidx>& inner,
                          bool outer_ordered, bool inner_ordered, bool inner_unique,
                          const std::string& what) {
    if (!outer_ordered) return;
    for (std::size_t k = 1; k < outer.size(); ++k) {
        KDR_REQUIRE(outer[k] >= outer[k - 1], what,
                    ": outer coordinates break the ordered promise at slot ", k, " (",
                    outer[k - 1], " then ", outer[k], ")");
        if (!inner_ordered || outer[k] != outer[k - 1]) continue;
        if (inner_unique) {
            KDR_REQUIRE(inner[k] > inner[k - 1], what, ": inner coordinates break the "
                        "ordered+unique promise within outer fiber ", outer[k], " at slot ",
                        k);
        } else {
            KDR_REQUIRE(inner[k] >= inner[k - 1], what, ": inner coordinates break the "
                        "ordered promise within outer fiber ", outer[k], " at slot ", k);
        }
    }
}

} // namespace kdr::sparse
