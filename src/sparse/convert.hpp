#pragma once

/// \file convert.hpp
/// Format conversions. Any `LinearOperator` can round-trip through triplets,
/// so every format converts to every other — the KDR analog of "no physical
/// layout is privileged" (paper §3). Aliased placements are summed during
/// coalescing, matching eq. (2) semantics.

#include <memory>

#include "sparse/bcsr.hpp"
#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"

namespace kdr {

template <typename T>
[[nodiscard]] CooMatrix<T> to_coo(const LinearOperator<T>& a) {
    return CooMatrix<T>::from_triplets(a.domain(), a.range(),
                                       coalesce_triplets(a.to_triplets()));
}

template <typename T>
[[nodiscard]] CsrMatrix<T> to_csr(const LinearOperator<T>& a) {
    return CsrMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] CscMatrix<T> to_csc(const LinearOperator<T>& a) {
    return CscMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] DenseMatrix<T> to_dense(const LinearOperator<T>& a) {
    return DenseMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] EllMatrix<T> to_ell(const LinearOperator<T>& a) {
    return EllMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] EllTransposedMatrix<T> to_ellt(const LinearOperator<T>& a) {
    return EllTransposedMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] DiaMatrix<T> to_dia(const LinearOperator<T>& a) {
    return DiaMatrix<T>::from_triplets(a.domain(), a.range(), a.to_triplets());
}

template <typename T>
[[nodiscard]] BcsrMatrix<T> to_bcsr(const LinearOperator<T>& a, gidx block_rows,
                                    gidx block_cols) {
    return BcsrMatrix<T>::from_triplets(a.domain(), a.range(), block_rows, block_cols,
                                        a.to_triplets());
}

template <typename T>
[[nodiscard]] BcscMatrix<T> to_bcsc(const LinearOperator<T>& a, gidx block_rows,
                                    gidx block_cols) {
    return BcscMatrix<T>::from_triplets(a.domain(), a.range(), block_rows, block_cols,
                                        a.to_triplets());
}

} // namespace kdr
