#pragma once

/// \file matrix_market.hpp
/// Matrix Market (.mtx) exchange-format I/O — the lingua franca for sparse
/// test matrices (SuiteSparse collection et al.). Supports the coordinate
/// format with real/integer/pattern fields and general/symmetric/
/// skew-symmetric storage. Reads produce triplets (1-based indices converted
/// to 0-based, symmetric entries expanded), which feed any storage format's
/// `from_triplets`; writes emit the `general` coordinate form.

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/linear_operator.hpp"

namespace kdr::mm {

struct MatrixMarketData {
    gidx rows = 0;
    gidx cols = 0;
    std::vector<Triplet<double>> triplets; ///< symmetric storage already expanded
    bool was_symmetric = false;
    bool was_pattern = false;
};

/// Parse a Matrix Market stream. Throws kdr::Error on malformed input.
[[nodiscard]] MatrixMarketData read_matrix_market(std::istream& in);

/// Parse a Matrix Market file by path.
[[nodiscard]] MatrixMarketData read_matrix_market_file(const std::string& path);

/// Write an operator's triplets as `matrix coordinate real general`.
void write_matrix_market(std::ostream& out, const LinearOperator<double>& op);
void write_matrix_market_file(const std::string& path, const LinearOperator<double>& op);

} // namespace kdr::mm
