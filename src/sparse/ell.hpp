#pragma once

/// \file ell.hpp
/// ELL and ELL' formats (paper Fig 3).
///
/// ELL : structural assumption `K = R × K₀` (K₀ slots per row); the row
/// relation is the implicit projection π₁ and the column relation is a
/// stored array `col : K → D`. Rows with fewer than K₀ nonzeros pad with the
/// `kNoTarget` sentinel — padded kernel points relate to nothing, which
/// eq. (2)'s relational semantics absorbs silently.
///
/// ELL' (ELLt here): the transpose arrangement `K = D × K₀` with a stored
/// `row : K → R` and implicit column relation.

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class EllMatrix final : public LinearOperator<T> {
public:
    /// Build from padded arrays: slot (i, s) at index i*slots+s; cols may be
    /// kNoTarget for padding (entry value ignored).
    EllMatrix(IndexSpace domain, IndexSpace range, gidx slots, std::vector<gidx> cols,
              std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(range_.size() * slots, "ell_kernel")),
          slots_(slots),
          entries_(std::move(entries)) {
        KDR_REQUIRE(slots_ > 0, "EllMatrix: need at least one slot per row");
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == kernel_.size(),
                    "EllMatrix: entries size mismatch");
        KDR_REQUIRE(cols.size() == entries_.size(), "EllMatrix: cols size mismatch");
        row_rel_ = std::make_shared<QuotientRelation>(kernel_, range_, slots_);
        col_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, domain_, std::move(cols));
    }

    /// Build from triplets; slots = max row occupancy.
    static EllMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                   std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        std::vector<gidx> occupancy(static_cast<std::size_t>(range.size()), 0);
        for (const Triplet<T>& t : ts) ++occupancy[static_cast<std::size_t>(t.row)];
        gidx slots = 1;
        for (gidx occ : occupancy) slots = std::max(slots, occ);
        std::vector<gidx> cols(static_cast<std::size_t>(range.size() * slots), kNoTarget);
        std::vector<T> vals(static_cast<std::size_t>(range.size() * slots), T{});
        std::vector<gidx> cursor(static_cast<std::size_t>(range.size()), 0);
        for (const Triplet<T>& t : ts) {
            const auto slot = static_cast<std::size_t>(
                t.row * slots + cursor[static_cast<std::size_t>(t.row)]++);
            cols[slot] = t.col;
            vals[slot] = t.value;
        }
        return EllMatrix(std::move(domain), std::move(range), slots, std::move(cols),
                         std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "ell"; }
    [[nodiscard]] gidx slots_per_row() const noexcept { return slots_; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                const gidx c = cols[ku];
                if (c == kNoTarget) continue;
                y[static_cast<std::size_t>(k / slots_)] +=
                    entries_[ku] * x[static_cast<std::size_t>(c)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& cols = col_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                const gidx c = cols[ku];
                if (c == kNoTarget) continue;
                y[static_cast<std::size_t>(c)] +=
                    entries_[ku] * x[static_cast<std::size_t>(k / slots_)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& cols = col_rel_->targets();
        std::vector<Triplet<T>> ts;
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const auto ku = static_cast<std::size_t>(k);
            if (cols[ku] != kNoTarget) ts.push_back({k / slots_, cols[ku], entries_[ku]});
        }
        return ts;
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    gidx slots_;
    std::vector<T> entries_;
    std::shared_ptr<QuotientRelation> row_rel_;
    std::shared_ptr<ArrayFunctionRelation> col_rel_;
};

/// ELL' — the column-major twin: K = D × K₀, stored row indices, implicit
/// column relation.
template <typename T>
class EllTransposedMatrix final : public LinearOperator<T> {
public:
    EllTransposedMatrix(IndexSpace domain, IndexSpace range, gidx slots, std::vector<gidx> rows,
                        std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(domain_.size() * slots, "ellt_kernel")),
          slots_(slots),
          entries_(std::move(entries)) {
        KDR_REQUIRE(slots_ > 0, "EllTransposedMatrix: need at least one slot per column");
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == kernel_.size(),
                    "EllTransposedMatrix: entries size mismatch");
        KDR_REQUIRE(rows.size() == entries_.size(), "EllTransposedMatrix: rows size mismatch");
        col_rel_ = std::make_shared<QuotientRelation>(kernel_, domain_, slots_);
        row_rel_ = std::make_shared<ArrayFunctionRelation>(kernel_, range_, std::move(rows));
    }

    static EllTransposedMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                             std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        std::vector<gidx> occupancy(static_cast<std::size_t>(domain.size()), 0);
        for (const Triplet<T>& t : ts) ++occupancy[static_cast<std::size_t>(t.col)];
        gidx slots = 1;
        for (gidx occ : occupancy) slots = std::max(slots, occ);
        std::vector<gidx> rows(static_cast<std::size_t>(domain.size() * slots), kNoTarget);
        std::vector<T> vals(static_cast<std::size_t>(domain.size() * slots), T{});
        std::vector<gidx> cursor(static_cast<std::size_t>(domain.size()), 0);
        for (const Triplet<T>& t : ts) {
            const auto slot = static_cast<std::size_t>(
                t.col * slots + cursor[static_cast<std::size_t>(t.col)]++);
            rows[slot] = t.row;
            vals[slot] = t.value;
        }
        return EllTransposedMatrix(std::move(domain), std::move(range), slots, std::move(rows),
                                   std::move(vals));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "ellt"; }
    [[nodiscard]] gidx slots_per_col() const noexcept { return slots_; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                const gidx r = rows[ku];
                if (r == kNoTarget) continue;
                y[static_cast<std::size_t>(r)] +=
                    entries_[ku] * x[static_cast<std::size_t>(k / slots_)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& rows = row_rel_->targets();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto ku = static_cast<std::size_t>(k);
                const gidx r = rows[ku];
                if (r == kNoTarget) continue;
                y[static_cast<std::size_t>(k / slots_)] +=
                    entries_[ku] * x[static_cast<std::size_t>(r)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& rows = row_rel_->targets();
        std::vector<Triplet<T>> ts;
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const auto ku = static_cast<std::size_t>(k);
            if (rows[ku] != kNoTarget) ts.push_back({rows[ku], k / slots_, entries_[ku]});
        }
        return ts;
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    gidx slots_;
    std::vector<T> entries_;
    std::shared_ptr<QuotientRelation> col_rel_;
    std::shared_ptr<ArrayFunctionRelation> row_rel_;
};

} // namespace kdr
