#include "sparse/relations.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kdr {

// ---------------------------------------------------------------- ArrayFunctionRelation

ArrayFunctionRelation::ArrayFunctionRelation(IndexSpace source, IndexSpace target,
                                             std::vector<gidx> targets)
    : source_(std::move(source)), target_(std::move(target)), targets_(std::move(targets)) {
    KDR_REQUIRE(static_cast<gidx>(targets_.size()) == source_.size(),
                "ArrayFunctionRelation: targets array size ", targets_.size(),
                " != source space size ", source_.size());
    for (gidx t : targets_) {
        KDR_REQUIRE(t == kNoTarget || (t >= 0 && t < target_.size()),
                    "ArrayFunctionRelation: target index ", t, " out of range [0,",
                    target_.size(), ")");
    }
}

IntervalSet ArrayFunctionRelation::image_of(const IntervalSet& src) const {
    std::vector<gidx> hits;
    hits.reserve(static_cast<std::size_t>(src.volume()));
    src.for_each([&](gidx k) {
        const gidx t = targets_[static_cast<std::size_t>(k)];
        if (t != kNoTarget) hits.push_back(t);
    });
    return IntervalSet::from_points(std::move(hits));
}

void ArrayFunctionRelation::build_inverse() const {
    if (inverse_built_) return;
    inv_offsets_.assign(static_cast<std::size_t>(target_.size()) + 1, 0);
    for (gidx t : targets_)
        if (t != kNoTarget) ++inv_offsets_[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = 1; i < inv_offsets_.size(); ++i) inv_offsets_[i] += inv_offsets_[i - 1];
    inv_sources_.resize(static_cast<std::size_t>(inv_offsets_.back()));
    std::vector<gidx> cursor(inv_offsets_.begin(), inv_offsets_.end() - 1);
    for (gidx k = 0; k < static_cast<gidx>(targets_.size()); ++k) {
        const gidx t = targets_[static_cast<std::size_t>(k)];
        if (t != kNoTarget)
            inv_sources_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)] = k;
    }
    inverse_built_ = true;
}

IntervalSet ArrayFunctionRelation::preimage_of(const IntervalSet& dst) const {
    build_inverse();
    std::vector<gidx> hits;
    dst.for_each([&](gidx t) {
        const auto lo = static_cast<std::size_t>(inv_offsets_[static_cast<std::size_t>(t)]);
        const auto hi = static_cast<std::size_t>(inv_offsets_[static_cast<std::size_t>(t) + 1]);
        hits.insert(hits.end(), inv_sources_.begin() + static_cast<std::ptrdiff_t>(lo),
                    inv_sources_.begin() + static_cast<std::ptrdiff_t>(hi));
    });
    return IntervalSet::from_points(std::move(hits));
}

std::vector<std::pair<gidx, gidx>> ArrayFunctionRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    pairs.reserve(targets_.size());
    for (gidx k = 0; k < static_cast<gidx>(targets_.size()); ++k) {
        const gidx t = targets_[static_cast<std::size_t>(k)];
        if (t != kNoTarget) pairs.emplace_back(k, t);
    }
    return pairs;
}

// ---------------------------------------------------------------- RowPtrRelation

RowPtrRelation::RowPtrRelation(IndexSpace kernel, IndexSpace rows, std::vector<gidx> offsets)
    : kernel_(std::move(kernel)), rows_(std::move(rows)), offsets_(std::move(offsets)) {
    KDR_REQUIRE(static_cast<gidx>(offsets_.size()) == rows_.size() + 1,
                "RowPtrRelation: offsets size ", offsets_.size(), " != rows+1 ",
                rows_.size() + 1);
    KDR_REQUIRE(offsets_.front() == 0, "RowPtrRelation: offsets must start at 0");
    KDR_REQUIRE(offsets_.back() == kernel_.size(), "RowPtrRelation: offsets must end at |K| ",
                kernel_.size(), ", got ", offsets_.back());
    for (std::size_t i = 1; i < offsets_.size(); ++i)
        KDR_REQUIRE(offsets_[i] >= offsets_[i - 1], "RowPtrRelation: offsets not monotone at ", i);
}

IntervalSet RowPtrRelation::image_of(const IntervalSet& src) const {
    // Rows whose kernel interval intersects the source subset. Rows in the
    // candidate range with empty kernel intervals are excluded (they relate
    // to nothing).
    std::vector<Interval> rows;
    src.for_each_interval([&](const Interval& iv) {
        // First row whose interval end exceeds iv.lo:
        auto lo_it = std::upper_bound(offsets_.begin() + 1, offsets_.end(), iv.lo);
        const gidx row_lo = lo_it - (offsets_.begin() + 1);
        // First row whose interval start is >= iv.hi:
        auto hi_it = std::lower_bound(offsets_.begin(), offsets_.end() - 1, iv.hi);
        const gidx row_hi = hi_it - offsets_.begin();
        gidx run_start = -1;
        for (gidx i = row_lo; i < row_hi; ++i) {
            const bool nonempty =
                offsets_[static_cast<std::size_t>(i)] < offsets_[static_cast<std::size_t>(i) + 1];
            if (nonempty && run_start < 0) run_start = i;
            if (!nonempty && run_start >= 0) {
                rows.push_back({run_start, i});
                run_start = -1;
            }
        }
        if (run_start >= 0) rows.push_back({run_start, row_hi});
    });
    return IntervalSet::from_intervals(std::move(rows));
}

IntervalSet RowPtrRelation::preimage_of(const IntervalSet& dst) const {
    std::vector<Interval> kernels;
    dst.for_each_interval([&](const Interval& iv) {
        const gidx lo = offsets_[static_cast<std::size_t>(iv.lo)];
        const gidx hi = offsets_[static_cast<std::size_t>(iv.hi)];
        if (lo < hi) kernels.push_back({lo, hi});
    });
    return IntervalSet::from_intervals(std::move(kernels));
}

std::vector<std::pair<gidx, gidx>> RowPtrRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    pairs.reserve(static_cast<std::size_t>(kernel_.size()));
    for (gidx i = 0; i < rows_.size(); ++i) {
        for (gidx k = offsets_[static_cast<std::size_t>(i)];
             k < offsets_[static_cast<std::size_t>(i) + 1]; ++k) {
            pairs.emplace_back(k, i);
        }
    }
    return pairs;
}

// ---------------------------------------------------------------- QuotientRelation

QuotientRelation::QuotientRelation(IndexSpace source, IndexSpace target, gidx divisor)
    : source_(std::move(source)), target_(std::move(target)), divisor_(divisor) {
    KDR_REQUIRE(divisor_ > 0, "QuotientRelation: nonpositive divisor ", divisor_);
    KDR_REQUIRE(source_.size() == target_.size() * divisor_,
                "QuotientRelation: |source| ", source_.size(), " != |target| * divisor ",
                target_.size() * divisor_);
}

IntervalSet QuotientRelation::image_of(const IntervalSet& src) const {
    std::vector<Interval> out;
    src.for_each_interval([&](const Interval& iv) {
        out.push_back({iv.lo / divisor_, (iv.hi - 1) / divisor_ + 1});
    });
    return IntervalSet::from_intervals(std::move(out));
}

IntervalSet QuotientRelation::preimage_of(const IntervalSet& dst) const {
    std::vector<Interval> out;
    dst.for_each_interval(
        [&](const Interval& iv) { out.push_back({iv.lo * divisor_, iv.hi * divisor_}); });
    return IntervalSet::from_intervals(std::move(out));
}

std::vector<std::pair<gidx, gidx>> QuotientRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    pairs.reserve(static_cast<std::size_t>(source_.size()));
    for (gidx k = 0; k < source_.size(); ++k) pairs.emplace_back(k, k / divisor_);
    return pairs;
}

// ---------------------------------------------------------------- RemainderRelation

RemainderRelation::RemainderRelation(IndexSpace source, IndexSpace target, gidx modulus)
    : source_(std::move(source)), target_(std::move(target)), modulus_(modulus) {
    KDR_REQUIRE(modulus_ > 0, "RemainderRelation: nonpositive modulus ", modulus_);
    KDR_REQUIRE(modulus_ == target_.size(), "RemainderRelation: modulus ", modulus_,
                " != |target| ", target_.size());
    KDR_REQUIRE(source_.size() % modulus_ == 0, "RemainderRelation: |source| ", source_.size(),
                " not a multiple of modulus ", modulus_);
}

IntervalSet RemainderRelation::image_of(const IntervalSet& src) const {
    std::vector<Interval> out;
    src.for_each_interval([&](const Interval& iv) {
        if (iv.size() >= modulus_) {
            out.push_back({0, modulus_}); // wraps the whole target
            return;
        }
        const gidx lo = iv.lo % modulus_;
        const gidx hi = lo + iv.size();
        if (hi <= modulus_) {
            out.push_back({lo, hi});
        } else {
            out.push_back({lo, modulus_});
            out.push_back({0, hi - modulus_});
        }
    });
    return IntervalSet::from_intervals(std::move(out));
}

IntervalSet RemainderRelation::preimage_of(const IntervalSet& dst) const {
    const gidx reps = source_.size() / modulus_;
    std::vector<Interval> out;
    out.reserve(static_cast<std::size_t>(reps) * dst.interval_count());
    for (gidx r = 0; r < reps; ++r) {
        dst.for_each_interval([&](const Interval& iv) {
            out.push_back({r * modulus_ + iv.lo, r * modulus_ + iv.hi});
        });
    }
    return IntervalSet::from_intervals(std::move(out));
}

std::vector<std::pair<gidx, gidx>> RemainderRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    pairs.reserve(static_cast<std::size_t>(source_.size()));
    for (gidx k = 0; k < source_.size(); ++k) pairs.emplace_back(k, k % modulus_);
    return pairs;
}

// ---------------------------------------------------------------- DiagonalRelation

DiagonalRelation::DiagonalRelation(IndexSpace kernel, IndexSpace rows, gidx domain_size,
                                   std::vector<gidx> diag_offsets)
    : kernel_(std::move(kernel)),
      rows_(std::move(rows)),
      d_(domain_size),
      diag_offsets_(std::move(diag_offsets)) {
    KDR_REQUIRE(d_ > 0, "DiagonalRelation: nonpositive domain size");
    KDR_REQUIRE(kernel_.size() == static_cast<gidx>(diag_offsets_.size()) * d_,
                "DiagonalRelation: |K| ", kernel_.size(), " != #diagonals * d ",
                static_cast<gidx>(diag_offsets_.size()) * d_);
}

IntervalSet DiagonalRelation::image_of(const IntervalSet& src) const {
    std::vector<Interval> out;
    src.for_each_interval([&](const Interval& iv) {
        // Split the kernel interval by diagonal, then shift by -offset.
        gidx lo = iv.lo;
        while (lo < iv.hi) {
            const gidx k0 = lo / d_;
            const gidx seg_hi = std::min(iv.hi, (k0 + 1) * d_);
            const gidx off = diag_offsets_[static_cast<std::size_t>(k0)];
            const gidx row_lo = (lo - k0 * d_) - off;
            const gidx row_hi = (seg_hi - k0 * d_) - off;
            const gidx clamped_lo = std::max<gidx>(row_lo, 0);
            const gidx clamped_hi = std::min<gidx>(row_hi, rows_.size());
            if (clamped_lo < clamped_hi) out.push_back({clamped_lo, clamped_hi});
            lo = seg_hi;
        }
    });
    return IntervalSet::from_intervals(std::move(out));
}

IntervalSet DiagonalRelation::preimage_of(const IntervalSet& dst) const {
    std::vector<Interval> out;
    for (std::size_t k0 = 0; k0 < diag_offsets_.size(); ++k0) {
        const gidx off = diag_offsets_[k0];
        const gidx base = static_cast<gidx>(k0) * d_;
        dst.for_each_interval([&](const Interval& iv) {
            // row i stored at kernel position base + (i + off), valid if in [0, d).
            const gidx lo = std::max<gidx>(iv.lo + off, 0);
            const gidx hi = std::min<gidx>(iv.hi + off, d_);
            if (lo < hi) out.push_back({base + lo, base + hi});
        });
    }
    return IntervalSet::from_intervals(std::move(out));
}

std::vector<std::pair<gidx, gidx>> DiagonalRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    for (std::size_t k0 = 0; k0 < diag_offsets_.size(); ++k0) {
        const gidx off = diag_offsets_[k0];
        for (gidx j = 0; j < d_; ++j) {
            const gidx i = j - off;
            if (i >= 0 && i < rows_.size())
                pairs.emplace_back(static_cast<gidx>(k0) * d_ + j, i);
        }
    }
    return pairs;
}

// ---------------------------------------------------------------- BlockExpandedRelation

BlockExpandedRelation::BlockExpandedRelation(IndexSpace kernel, IndexSpace target,
                                             std::shared_ptr<const Relation> base,
                                             gidx block_rows, gidx block_cols, gidx target_block,
                                             bool use_row_block)
    : kernel_(std::move(kernel)),
      target_(std::move(target)),
      base_(std::move(base)),
      br_(block_rows),
      bd_(block_cols),
      tb_(target_block),
      use_row_block_(use_row_block) {
    KDR_REQUIRE(br_ > 0 && bd_ > 0, "BlockExpandedRelation: nonpositive block dims");
    KDR_REQUIRE(kernel_.size() == base_->source().size() * br_ * bd_,
                "BlockExpandedRelation: |K| mismatch");
    KDR_REQUIRE(target_.size() == base_->target().size() * tb_,
                "BlockExpandedRelation: |target| mismatch");
}

IntervalSet BlockExpandedRelation::image_of(const IntervalSet& src) const {
    // Fully covered kernel blocks expand through the base relation in bulk;
    // partially covered head/tail blocks are resolved exactly per block.
    const gidx bvol = br_ * bd_;
    std::vector<Interval> out;
    std::vector<Interval> full_blocks;

    auto handle_partial = [&](gidx k0, gidx wlo, gidx whi) {
        // Within-block element positions [wlo, whi); find covered target-block
        // coordinates b.
        std::vector<Interval> bs;
        if (use_row_block_) {
            bs.push_back({wlo / bd_, (whi - 1) / bd_ + 1});
        } else if (whi - wlo >= bd_) {
            bs.push_back({0, bd_});
        } else {
            const gidx l = wlo % bd_;
            const gidx h = l + (whi - wlo);
            if (h <= bd_) {
                bs.push_back({l, h});
            } else {
                bs.push_back({l, bd_});
                bs.push_back({0, h - bd_});
            }
        }
        base_->image_of(IntervalSet(k0, k0 + 1)).for_each([&](gidx x0) {
            for (const Interval& b : bs) out.push_back({x0 * tb_ + b.lo, x0 * tb_ + b.hi});
        });
    };

    src.for_each_interval([&](const Interval& iv) {
        const gidx first_full = (iv.lo + bvol - 1) / bvol; // ceil
        const gidx last_full = iv.hi / bvol;               // floor
        if (first_full < last_full) {
            full_blocks.push_back({first_full, last_full});
            if (iv.lo < first_full * bvol)
                handle_partial(iv.lo / bvol, iv.lo % bvol, bvol);
            if (iv.hi > last_full * bvol) handle_partial(last_full, 0, iv.hi % bvol);
        } else {
            const gidx head_k0 = iv.lo / bvol;
            const gidx tail_k0 = (iv.hi - 1) / bvol;
            if (head_k0 == tail_k0) {
                handle_partial(head_k0, iv.lo % bvol, iv.hi - head_k0 * bvol);
            } else {
                handle_partial(head_k0, iv.lo % bvol, bvol);
                handle_partial(tail_k0, 0, iv.hi - tail_k0 * bvol);
            }
        }
    });
    if (!full_blocks.empty()) {
        base_->image_of(IntervalSet::from_intervals(std::move(full_blocks)))
            .for_each_interval(
                [&](const Interval& iv) { out.push_back({iv.lo * tb_, iv.hi * tb_}); });
    }
    return IntervalSet::from_intervals(std::move(out));
}

IntervalSet BlockExpandedRelation::preimage_of(const IntervalSet& dst) const {
    const gidx bvol = br_ * bd_;
    std::vector<Interval> out;
    std::vector<Interval> full_blocks;

    auto handle_partial = [&](gidx x0, gidx blo, gidx bhi) {
        base_->preimage_of(IntervalSet(x0, x0 + 1)).for_each([&](gidx k0) {
            const gidx base_k = k0 * bvol;
            if (use_row_block_) {
                // rows blo..bhi of the block: one contiguous run.
                out.push_back({base_k + blo * bd_, base_k + bhi * bd_});
            } else {
                // cols blo..bhi of the block: one run per block row.
                for (gidx r = 0; r < br_; ++r)
                    out.push_back({base_k + r * bd_ + blo, base_k + r * bd_ + bhi});
            }
        });
    };

    dst.for_each_interval([&](const Interval& iv) {
        const gidx first_full = (iv.lo + tb_ - 1) / tb_; // ceil
        const gidx last_full = iv.hi / tb_;              // floor
        if (first_full < last_full) {
            full_blocks.push_back({first_full, last_full});
            if (iv.lo < first_full * tb_) handle_partial(iv.lo / tb_, iv.lo % tb_, tb_);
            if (iv.hi > last_full * tb_) handle_partial(last_full, 0, iv.hi % tb_);
        } else {
            const gidx head_x0 = iv.lo / tb_;
            const gidx tail_x0 = (iv.hi - 1) / tb_;
            if (head_x0 == tail_x0) {
                handle_partial(head_x0, iv.lo % tb_, iv.hi - head_x0 * tb_);
            } else {
                handle_partial(head_x0, iv.lo % tb_, tb_);
                handle_partial(tail_x0, 0, iv.hi - tail_x0 * tb_);
            }
        }
    });
    if (!full_blocks.empty()) {
        base_->preimage_of(IntervalSet::from_intervals(std::move(full_blocks)))
            .for_each_interval(
                [&](const Interval& iv) { out.push_back({iv.lo * bvol, iv.hi * bvol}); });
    }
    return IntervalSet::from_intervals(std::move(out));
}

std::vector<std::pair<gidx, gidx>> BlockExpandedRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    for (const auto& [k0, x0] : base_->enumerate()) {
        for (gidx r = 0; r < br_; ++r) {
            for (gidx c = 0; c < bd_; ++c) {
                const gidx k = (k0 * br_ + r) * bd_ + c;
                const gidx b = use_row_block_ ? r : c;
                pairs.emplace_back(k, x0 * tb_ + b);
            }
        }
    }
    return pairs;
}

// ---------------------------------------------------------------- StencilOffsetRelation

StencilOffsetRelation::StencilOffsetRelation(IndexSpace kernel, IndexSpace grid,
                                             std::array<gidx, 3> extents,
                                             std::vector<std::array<gidx, 3>> offsets,
                                             bool shift_targets)
    : kernel_(std::move(kernel)),
      grid_(std::move(grid)),
      nx_(extents[0]),
      ny_(extents[1]),
      nz_(extents[2]),
      n_(extents[0] * extents[1] * extents[2]),
      shift_(shift_targets) {
    KDR_REQUIRE(nx_ > 0 && ny_ > 0 && nz_ > 0, "StencilOffsetRelation: nonpositive extent ",
                nx_, "x", ny_, "x", nz_);
    KDR_REQUIRE(grid_.size() == n_, "StencilOffsetRelation: |grid| ", grid_.size(),
                " != nx*ny*nz ", n_);
    KDR_REQUIRE(kernel_.size() == static_cast<gidx>(offsets.size()) * n_,
                "StencilOffsetRelation: |K| ", kernel_.size(), " != #offsets * n ",
                static_cast<gidx>(offsets.size()) * n_);
    blocks_.reserve(offsets.size());
    for (const auto& o : offsets) {
        Block b;
        b.delta = (o[0] * ny_ + o[1]) * nz_ + o[2];
        b.rx = {std::max<gidx>(0, -o[0]), nx_ - std::max<gidx>(0, o[0])};
        b.ry = {std::max<gidx>(0, -o[1]), ny_ - std::max<gidx>(0, o[1])};
        b.rz = {std::max<gidx>(0, -o[2]), nz_ - std::max<gidx>(0, o[2])};
        blocks_.push_back(b);
    }
}

IntervalSet StencilOffsetRelation::image_of(const IntervalSet& src) const {
    std::vector<Interval> out;
    src.for_each_interval([&](const Interval& iv) {
        // Split the kernel interval by offset block, clip each local segment
        // to the block's validity box, then shift into the target space.
        gidx lo = iv.lo;
        while (lo < iv.hi) {
            const gidx p = lo / n_;
            const gidx seg_hi = std::min(iv.hi, (p + 1) * n_);
            const gidx d = delta(p);
            for_each_valid(p, {lo - p * n_, seg_hi - p * n_},
                           [&](Interval run) { out.push_back({run.lo + d, run.hi + d}); });
            lo = seg_hi;
        }
    });
    return IntervalSet::from_intervals(std::move(out));
}

IntervalSet StencilOffsetRelation::preimage_of(const IntervalSet& dst) const {
    std::vector<Interval> out;
    for (gidx p = 0; p < block_count(); ++p) {
        const gidx d = delta(p);
        const gidx base = p * n_;
        dst.for_each_interval([&](const Interval& iv) {
            // Target t is hit by slot (p, t − δ_p) when that row is valid.
            for_each_valid(p, {iv.lo - d, iv.hi - d},
                           [&](Interval run) { out.push_back({base + run.lo, base + run.hi}); });
        });
    }
    return IntervalSet::from_intervals(std::move(out));
}

std::vector<std::pair<gidx, gidx>> StencilOffsetRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    for (gidx p = 0; p < block_count(); ++p) {
        const gidx d = delta(p);
        const gidx base = p * n_;
        for_each_valid(p, {0, n_}, [&](Interval run) {
            for (gidx i = run.lo; i < run.hi; ++i) pairs.emplace_back(base + i, i + d);
        });
    }
    return pairs;
}

} // namespace kdr
