#pragma once

/// \file adapters.hpp
/// Operator adapters — lazy views that present an existing LinearOperator
/// under a transformation without copying its data. They compose naturally
/// in the KDR framework because a view only has to describe how its
/// *relations* derive from the base operator's:
///
///   TransposeOperator  — swaps the row and column relations (K unchanged);
///   ScaledOperator     — relations unchanged, entries scaled by α;
///   ShiftedOperator    — A + σI over a widened kernel space K ⊔ D.
///
/// All three are full LinearOperators: they feed solvers, planners, and the
/// universal co-partitioning operators like any stored format.

#include <memory>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

/// Aᵀ as a zero-copy view: domain/range swap, row/col relations swap,
/// multiply dispatches to the base's transpose kernels.
template <typename T>
class TransposeOperator final : public LinearOperator<T> {
public:
    explicit TransposeOperator(std::shared_ptr<const LinearOperator<T>> base)
        : base_(std::move(base)) {
        KDR_REQUIRE(base_ != nullptr, "TransposeOperator: null base");
    }

    [[nodiscard]] const IndexSpace& domain() const override { return base_->range(); }
    [[nodiscard]] const IndexSpace& range() const override { return base_->domain(); }
    [[nodiscard]] const IndexSpace& kernel() const override { return base_->kernel(); }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return base_->row_relation();
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return base_->col_relation();
    }

    [[nodiscard]] const char* format_name() const override { return "transpose-view"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        base_->multiply_add_transpose_piece(piece, x, y);
    }
    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        base_->multiply_add_piece(piece, x, y);
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        auto ts = base_->to_triplets();
        for (auto& t : ts) std::swap(t.row, t.col);
        return ts;
    }

    [[nodiscard]] const LinearOperator<T>& base() const { return *base_; }

private:
    std::shared_ptr<const LinearOperator<T>> base_;
};

/// α·A as a zero-copy view.
template <typename T>
class ScaledOperator final : public LinearOperator<T> {
public:
    ScaledOperator(std::shared_ptr<const LinearOperator<T>> base, T alpha)
        : base_(std::move(base)), alpha_(alpha) {
        KDR_REQUIRE(base_ != nullptr, "ScaledOperator: null base");
    }

    [[nodiscard]] const IndexSpace& domain() const override { return base_->domain(); }
    [[nodiscard]] const IndexSpace& range() const override { return base_->range(); }
    [[nodiscard]] const IndexSpace& kernel() const override { return base_->kernel(); }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return base_->col_relation();
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return base_->row_relation();
    }

    [[nodiscard]] const char* format_name() const override { return "scaled-view"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        // y += α (A x) over the piece: scale through a staging pass on the
        // affected rows. The affected rows are the piece's row image.
        scaled_apply(piece, x, y, /*transpose=*/false);
    }
    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        scaled_apply(piece, x, y, /*transpose=*/true);
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        auto ts = base_->to_triplets();
        for (auto& t : ts) t.value *= alpha_;
        return ts;
    }

    [[nodiscard]] T alpha() const { return alpha_; }

private:
    void scaled_apply(const IntervalSet& piece, VecView<const T> x, VecView<T> y,
                      bool transpose) const {
        const IntervalSet rows = transpose ? base_->col_relation()->image_of(piece)
                                           : base_->row_relation()->image_of(piece);
        std::vector<T> staging(y.size(), T{});
        if (transpose) {
            base_->multiply_add_transpose_piece(piece, x, staging);
        } else {
            base_->multiply_add_piece(piece, x, staging);
        }
        rows.for_each_interval([&](const Interval& iv) {
            for (gidx i = iv.lo; i < iv.hi; ++i) {
                y[static_cast<std::size_t>(i)] +=
                    alpha_ * staging[static_cast<std::size_t>(i)];
            }
        });
    }

    std::shared_ptr<const LinearOperator<T>> base_;
    T alpha_;
};

/// A + σI as a view over the widened kernel space K' = K ⊔ D: the first |K|
/// kernel points are the base's, the trailing |D| points are the shift's
/// diagonal. Demonstrates that kernel spaces are genuinely abstract — a
/// view may invent one. Requires a square base.
template <typename T>
class ShiftedOperator final : public LinearOperator<T> {
public:
    ShiftedOperator(std::shared_ptr<const LinearOperator<T>> base, T sigma)
        : base_(std::move(base)), sigma_(sigma) {
        KDR_REQUIRE(base_ != nullptr, "ShiftedOperator: null base");
        KDR_REQUIRE(base_->domain().size() == base_->range().size(),
                    "ShiftedOperator: base must be square");
        kernel_ = IndexSpace::create(base_->kernel().size() + base_->domain().size(),
                                     "shifted_kernel");
        build_relations();
    }

    [[nodiscard]] const IndexSpace& domain() const override { return base_->domain(); }
    [[nodiscard]] const IndexSpace& range() const override { return base_->range(); }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "shifted-view"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        apply_split(piece, x, y, /*transpose=*/false);
    }
    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        apply_split(piece, x, y, /*transpose=*/true);
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        auto ts = base_->to_triplets();
        for (gidx i = 0; i < base_->domain().size(); ++i) ts.push_back({i, i, sigma_});
        return ts;
    }

    [[nodiscard]] T sigma() const { return sigma_; }

private:
    void build_relations() {
        // Relations = base relations on [0,|K|) plus the identity on the
        // trailing diagonal block, expressed via the generic fallback (the
        // base relations may be of any concrete type).
        const gidx kbase = base_->kernel().size();
        auto extend = [&](const Relation& rel) {
            auto pairs = rel.enumerate();
            for (gidx i = 0; i < base_->domain().size(); ++i) {
                pairs.emplace_back(kbase + i, i);
            }
            return std::make_shared<MaterializedRelation>(kernel_, rel.target(),
                                                          std::move(pairs));
        };
        row_rel_ = extend(*base_->row_relation());
        col_rel_ = extend(*base_->col_relation());
    }

    void apply_split(const IntervalSet& piece, VecView<const T> x, VecView<T> y,
                     bool transpose) const {
        const gidx kbase = base_->kernel().size();
        const IntervalSet base_piece =
            piece.set_intersection(IntervalSet(0, kbase));
        if (!base_piece.empty()) {
            if (transpose) {
                base_->multiply_add_transpose_piece(base_piece, x, y);
            } else {
                base_->multiply_add_piece(base_piece, x, y);
            }
        }
        const IntervalSet diag_piece =
            piece.set_intersection(IntervalSet(kbase, kernel_.size()));
        diag_piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const auto i = static_cast<std::size_t>(k - kbase);
                y[i] += sigma_ * x[i]; // symmetric: same for transpose
            }
        });
    }

    std::shared_ptr<const LinearOperator<T>> base_;
    T sigma_;
    IndexSpace kernel_;
    std::shared_ptr<MaterializedRelation> row_rel_;
    std::shared_ptr<MaterializedRelation> col_rel_;
};

} // namespace kdr
