#include "sparse/matrix_market.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace kdr::mm {

namespace {

std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

MatrixMarketData read_matrix_market(std::istream& in) {
    std::string line;
    KDR_REQUIRE(static_cast<bool>(std::getline(in, line)), "matrix market: empty input");

    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    std::istringstream banner(line);
    std::string magic, object, format, field, symmetry;
    banner >> magic >> object >> format >> field >> symmetry;
    KDR_REQUIRE(lower(magic) == "%%matrixmarket", "matrix market: bad banner '", line, "'");
    KDR_REQUIRE(lower(object) == "matrix", "matrix market: unsupported object '", object, "'");
    KDR_REQUIRE(lower(format) == "coordinate",
                "matrix market: only the coordinate format is supported, got '", format, "'");
    field = lower(field);
    symmetry = lower(symmetry);
    KDR_REQUIRE(field == "real" || field == "integer" || field == "pattern",
                "matrix market: unsupported field '", field, "'");
    KDR_REQUIRE(symmetry == "general" || symmetry == "symmetric" ||
                    symmetry == "skew-symmetric",
                "matrix market: unsupported symmetry '", symmetry, "'");

    // Skip comments; first non-comment line is the size header.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') break;
    }
    std::istringstream size_line(line);
    MatrixMarketData data;
    gidx nnz = 0;
    size_line >> data.rows >> data.cols >> nnz;
    KDR_REQUIRE(!size_line.fail() && data.rows > 0 && data.cols > 0 && nnz >= 0,
                "matrix market: malformed size line '", line, "'");

    data.was_symmetric = symmetry != "general";
    data.was_pattern = field == "pattern";
    data.triplets.reserve(static_cast<std::size_t>(nnz));

    for (gidx k = 0; k < nnz; ++k) {
        KDR_REQUIRE(static_cast<bool>(std::getline(in, line)), "matrix market: expected ", nnz,
                    " entries, stream ended after ", k);
        if (line.empty() || line[0] == '%') {
            --k;
            continue;
        }
        std::istringstream entry(line);
        gidx i = 0;
        gidx j = 0;
        double v = 1.0;
        entry >> i >> j;
        if (!data.was_pattern) entry >> v;
        KDR_REQUIRE(!entry.fail(), "matrix market: malformed entry '", line, "'");
        KDR_REQUIRE(i >= 1 && i <= data.rows && j >= 1 && j <= data.cols,
                    "matrix market: entry (", i, ",", j, ") outside ", data.rows, "x",
                    data.cols);
        if (symmetry == "skew-symmetric" && i == j) {
            // A = -A^T forces a zero diagonal; the format stores the strictly
            // lower triangle, so an explicit nonzero diagonal entry is a
            // malformed file, not data. (Pattern files imply value 1.)
            KDR_REQUIRE(v == 0.0, "matrix market: skew-symmetric file has nonzero diagonal "
                                  "entry (", i, ",", j, ") = ", v);
        }
        data.triplets.push_back({i - 1, j - 1, v});
        if (symmetry == "symmetric" && i != j) {
            data.triplets.push_back({j - 1, i - 1, v});
        } else if (symmetry == "skew-symmetric" && i != j) {
            data.triplets.push_back({j - 1, i - 1, -v});
        }
    }
    return data;
}

MatrixMarketData read_matrix_market_file(const std::string& path) {
    std::ifstream in(path);
    KDR_REQUIRE(in.good(), "matrix market: cannot open '", path, "'");
    return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const LinearOperator<double>& op) {
    const auto ts = coalesce_triplets(op.to_triplets());
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by KDRSolvers (" << op.format_name() << ")\n";
    out << op.range().size() << " " << op.domain().size() << " " << ts.size() << "\n";
    out.precision(17);
    for (const auto& t : ts) {
        out << t.row + 1 << " " << t.col + 1 << " " << t.value << "\n";
    }
}

void write_matrix_market_file(const std::string& path, const LinearOperator<double>& op) {
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "matrix market: cannot open '", path, "' for writing");
    write_matrix_market(out, op);
}

} // namespace kdr::mm
