#pragma once

/// \file dia.hpp
/// DIA format (paper Fig 3): kernel space `K = K₀ × {1..d}` where K₀ indexes
/// the stored diagonals and each diagonal stores d slots (one per domain
/// column). Both relations are implicit: `col(k₀,j) = j` and
/// `row(k₀,j) = j − offset(k₀)`; slots whose implied row falls outside
/// [0, r) are padding.

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class DiaMatrix final : public LinearOperator<T> {
public:
    /// Build from per-diagonal offsets and entries (entries.size() ==
    /// offsets.size() * |D|, diagonal-major, slot j holds A[j-off][j]).
    DiaMatrix(IndexSpace domain, IndexSpace range, std::vector<gidx> offsets,
              std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          kernel_(IndexSpace::create(static_cast<gidx>(offsets.size()) * domain_.size(),
                                     "dia_kernel")),
          offsets_(std::move(offsets)),
          entries_(std::move(entries)) {
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == kernel_.size(),
                    "DiaMatrix: entries size ", entries_.size(), " != #diagonals*d ",
                    kernel_.size());
        row_rel_ = std::make_shared<DiagonalRelation>(kernel_, range_, domain_.size(), offsets_);
        col_rel_ = std::make_shared<RemainderRelation>(kernel_, domain_, domain_.size());
    }

    static DiaMatrix from_triplets(IndexSpace domain, IndexSpace range,
                                   std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        std::map<gidx, std::size_t> diag_index; // offset -> k0
        for (const Triplet<T>& t : ts) diag_index.emplace(t.col - t.row, 0);
        std::vector<gidx> offsets;
        offsets.reserve(diag_index.size());
        for (auto& [off, idx] : diag_index) {
            idx = offsets.size();
            offsets.push_back(off);
        }
        const gidx d = domain.size();
        std::vector<T> entries(static_cast<std::size_t>(static_cast<gidx>(offsets.size()) * d),
                               T{});
        for (const Triplet<T>& t : ts) {
            const std::size_t k0 = diag_index.at(t.col - t.row);
            entries[k0 * static_cast<std::size_t>(d) + static_cast<std::size_t>(t.col)] +=
                t.value;
        }
        return DiaMatrix(std::move(domain), std::move(range), std::move(offsets),
                         std::move(entries));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "dia"; }
    [[nodiscard]] const std::vector<gidx>& diagonal_offsets() const noexcept { return offsets_; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const gidx d = domain_.size();
        const gidx r = range_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / d;
                const gidx j = k % d;
                const gidx i = j - offsets_[static_cast<std::size_t>(k0)];
                if (i < 0 || i >= r) continue; // padding slot
                y[static_cast<std::size_t>(i)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const gidx d = domain_.size();
        const gidx r = range_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / d;
                const gidx j = k % d;
                const gidx i = j - offsets_[static_cast<std::size_t>(k0)];
                if (i < 0 || i >= r) continue;
                y[static_cast<std::size_t>(j)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(i)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        std::vector<Triplet<T>> ts;
        const gidx d = domain_.size();
        const gidx r = range_.size();
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const gidx k0 = k / d;
            const gidx j = k % d;
            const gidx i = j - offsets_[static_cast<std::size_t>(k0)];
            if (i < 0 || i >= r) continue;
            const T v = entries_[static_cast<std::size_t>(k)];
            if (v != T{}) ts.push_back({i, j, v});
        }
        return ts;
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<gidx> offsets_;
    std::vector<T> entries_;
    std::shared_ptr<DiagonalRelation> row_rel_;
    std::shared_ptr<RemainderRelation> col_rel_;
};

} // namespace kdr
