#pragma once

/// \file bcsr.hpp
/// BCSR and BCSC formats (paper Fig 3): blocked variants where the kernel
/// space factors as `K = K₀ × B_R × B_D` and the domain/range spaces factor
/// as `D = D₀ × B_D`, `R = R₀ × B_R`. The stored metadata (block rowptr /
/// block column indices) lives at the block level; element-level relations
/// are the `BlockExpandedRelation` lifts of the block-level ones.

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"

namespace kdr {

template <typename T>
class BcsrMatrix final : public LinearOperator<T> {
public:
    /// Build from block-level CSR arrays: `block_rowptr` has |R₀|+1 entries,
    /// `block_cols` one D₀ index per stored block, `entries` row-major
    /// B_R × B_D values per block.
    BcsrMatrix(IndexSpace domain, IndexSpace range, gidx block_rows, gidx block_cols_dim,
               std::vector<gidx> block_rowptr, std::vector<gidx> block_cols,
               std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          br_(block_rows),
          bd_(block_cols_dim),
          entries_(std::move(entries)) {
        KDR_REQUIRE(br_ > 0 && bd_ > 0, "BcsrMatrix: nonpositive block dims");
        KDR_REQUIRE(range_.size() % br_ == 0, "BcsrMatrix: |R| ", range_.size(),
                    " not a multiple of block rows ", br_);
        KDR_REQUIRE(domain_.size() % bd_ == 0, "BcsrMatrix: |D| ", domain_.size(),
                    " not a multiple of block cols ", bd_);
        const gidx nblocks = static_cast<gidx>(block_cols.size());
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == nblocks * br_ * bd_,
                    "BcsrMatrix: entries size mismatch");
        block_kernel_ = IndexSpace::create(nblocks, "bcsr_block_kernel");
        block_rows_space_ = IndexSpace::create(range_.size() / br_, "bcsr_R0");
        block_cols_space_ = IndexSpace::create(domain_.size() / bd_, "bcsr_D0");
        kernel_ = IndexSpace::create(nblocks * br_ * bd_, "bcsr_kernel");
        base_row_rel_ = std::make_shared<RowPtrRelation>(block_kernel_, block_rows_space_,
                                                         std::move(block_rowptr));
        base_col_rel_ = std::make_shared<ArrayFunctionRelation>(block_kernel_, block_cols_space_,
                                                                std::move(block_cols));
        row_rel_ = std::make_shared<BlockExpandedRelation>(kernel_, range_, base_row_rel_, br_,
                                                           bd_, br_, /*use_row_block=*/true);
        col_rel_ = std::make_shared<BlockExpandedRelation>(kernel_, domain_, base_col_rel_, br_,
                                                           bd_, bd_, /*use_row_block=*/false);
        // Precompute the block row of each stored block for piece kernels.
        block_row_of_.resize(static_cast<std::size_t>(nblocks));
        const auto& rp = base_row_rel_->offsets();
        for (gidx i = 0; i < block_rows_space_.size(); ++i)
            for (gidx k0 = rp[static_cast<std::size_t>(i)]; k0 < rp[static_cast<std::size_t>(i) + 1];
                 ++k0)
                block_row_of_[static_cast<std::size_t>(k0)] = i;
    }

    static BcsrMatrix from_triplets(IndexSpace domain, IndexSpace range, gidx block_rows,
                                    gidx block_cols_dim, std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        const gidx r0 = range.size() / block_rows;
        // Map (block_row, block_col) -> dense block, in row-major block order.
        std::vector<std::vector<std::pair<gidx, std::vector<T>>>> rows_blocks(
            static_cast<std::size_t>(r0));
        for (const Triplet<T>& t : ts) {
            const gidx bi = t.row / block_rows;
            const gidx bj = t.col / block_cols_dim;
            auto& row = rows_blocks[static_cast<std::size_t>(bi)];
            auto it = std::find_if(row.begin(), row.end(),
                                   [&](const auto& kv) { return kv.first == bj; });
            if (it == row.end()) {
                row.emplace_back(bj, std::vector<T>(
                                         static_cast<std::size_t>(block_rows * block_cols_dim),
                                         T{}));
                it = std::prev(row.end());
            }
            it->second[static_cast<std::size_t>((t.row % block_rows) * block_cols_dim +
                                                (t.col % block_cols_dim))] += t.value;
        }
        std::vector<gidx> rowptr(static_cast<std::size_t>(r0) + 1, 0);
        std::vector<gidx> bcols;
        std::vector<T> entries;
        for (gidx bi = 0; bi < r0; ++bi) {
            auto& row = rows_blocks[static_cast<std::size_t>(bi)];
            std::sort(row.begin(), row.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; });
            rowptr[static_cast<std::size_t>(bi) + 1] =
                rowptr[static_cast<std::size_t>(bi)] + static_cast<gidx>(row.size());
            for (auto& [bj, block] : row) {
                bcols.push_back(bj);
                entries.insert(entries.end(), block.begin(), block.end());
            }
        }
        return BcsrMatrix(std::move(domain), std::move(range), block_rows, block_cols_dim,
                          std::move(rowptr), std::move(bcols), std::move(entries));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "bcsr"; }
    [[nodiscard]] gidx block_row_dim() const noexcept { return br_; }
    [[nodiscard]] gidx block_col_dim() const noexcept { return bd_; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& bcols = base_col_rel_->targets();
        const gidx bvol = br_ * bd_;
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / bvol;
                const gidx within = k % bvol;
                const gidx brow = within / bd_;
                const gidx bcol = within % bd_;
                const gidx i = block_row_of_[static_cast<std::size_t>(k0)] * br_ + brow;
                const gidx j = bcols[static_cast<std::size_t>(k0)] * bd_ + bcol;
                y[static_cast<std::size_t>(i)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& bcols = base_col_rel_->targets();
        const gidx bvol = br_ * bd_;
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / bvol;
                const gidx within = k % bvol;
                const gidx brow = within / bd_;
                const gidx bcol = within % bd_;
                const gidx i = block_row_of_[static_cast<std::size_t>(k0)] * br_ + brow;
                const gidx j = bcols[static_cast<std::size_t>(k0)] * bd_ + bcol;
                y[static_cast<std::size_t>(j)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(i)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& bcols = base_col_rel_->targets();
        const gidx bvol = br_ * bd_;
        std::vector<Triplet<T>> ts;
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const T v = entries_[static_cast<std::size_t>(k)];
            if (v == T{}) continue;
            const gidx k0 = k / bvol;
            const gidx within = k % bvol;
            ts.push_back({block_row_of_[static_cast<std::size_t>(k0)] * br_ + within / bd_,
                          bcols[static_cast<std::size_t>(k0)] * bd_ + within % bd_, v});
        }
        return ts;
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    IndexSpace block_kernel_;
    IndexSpace block_rows_space_;
    IndexSpace block_cols_space_;
    gidx br_;
    gidx bd_;
    std::vector<T> entries_;
    std::vector<gidx> block_row_of_;
    std::shared_ptr<RowPtrRelation> base_row_rel_;
    std::shared_ptr<ArrayFunctionRelation> base_col_rel_;
    std::shared_ptr<BlockExpandedRelation> row_rel_;
    std::shared_ptr<BlockExpandedRelation> col_rel_;
};

/// BCSC — blocked CSC: block-level colptr over D₀ plus stored block rows.
/// Implemented as the structural transpose view of BCSR construction.
template <typename T>
class BcscMatrix final : public LinearOperator<T> {
public:
    BcscMatrix(IndexSpace domain, IndexSpace range, gidx block_rows, gidx block_cols_dim,
               std::vector<gidx> block_colptr, std::vector<gidx> block_row_ids,
               std::vector<T> entries)
        : domain_(std::move(domain)),
          range_(std::move(range)),
          br_(block_rows),
          bd_(block_cols_dim),
          entries_(std::move(entries)) {
        KDR_REQUIRE(br_ > 0 && bd_ > 0, "BcscMatrix: nonpositive block dims");
        KDR_REQUIRE(range_.size() % br_ == 0 && domain_.size() % bd_ == 0,
                    "BcscMatrix: spaces not multiples of block dims");
        const gidx nblocks = static_cast<gidx>(block_row_ids.size());
        KDR_REQUIRE(static_cast<gidx>(entries_.size()) == nblocks * br_ * bd_,
                    "BcscMatrix: entries size mismatch");
        block_kernel_ = IndexSpace::create(nblocks, "bcsc_block_kernel");
        block_rows_space_ = IndexSpace::create(range_.size() / br_, "bcsc_R0");
        block_cols_space_ = IndexSpace::create(domain_.size() / bd_, "bcsc_D0");
        kernel_ = IndexSpace::create(nblocks * br_ * bd_, "bcsc_kernel");
        base_col_rel_ = std::make_shared<RowPtrRelation>(block_kernel_, block_cols_space_,
                                                         std::move(block_colptr));
        base_row_rel_ = std::make_shared<ArrayFunctionRelation>(block_kernel_, block_rows_space_,
                                                                std::move(block_row_ids));
        row_rel_ = std::make_shared<BlockExpandedRelation>(kernel_, range_, base_row_rel_, br_,
                                                           bd_, br_, /*use_row_block=*/true);
        col_rel_ = std::make_shared<BlockExpandedRelation>(kernel_, domain_, base_col_rel_, br_,
                                                           bd_, bd_, /*use_row_block=*/false);
        block_col_of_.resize(static_cast<std::size_t>(nblocks));
        const auto& cp = base_col_rel_->offsets();
        for (gidx j = 0; j < block_cols_space_.size(); ++j)
            for (gidx k0 = cp[static_cast<std::size_t>(j)]; k0 < cp[static_cast<std::size_t>(j) + 1];
                 ++k0)
                block_col_of_[static_cast<std::size_t>(k0)] = j;
    }

    static BcscMatrix from_triplets(IndexSpace domain, IndexSpace range, gidx block_rows,
                                    gidx block_cols_dim, std::vector<Triplet<T>> ts) {
        ts = coalesce_triplets(std::move(ts));
        const gidx d0 = domain.size() / block_cols_dim;
        std::vector<std::vector<std::pair<gidx, std::vector<T>>>> cols_blocks(
            static_cast<std::size_t>(d0));
        for (const Triplet<T>& t : ts) {
            const gidx bi = t.row / block_rows;
            const gidx bj = t.col / block_cols_dim;
            auto& col = cols_blocks[static_cast<std::size_t>(bj)];
            auto it = std::find_if(col.begin(), col.end(),
                                   [&](const auto& kv) { return kv.first == bi; });
            if (it == col.end()) {
                col.emplace_back(bi, std::vector<T>(
                                         static_cast<std::size_t>(block_rows * block_cols_dim),
                                         T{}));
                it = std::prev(col.end());
            }
            it->second[static_cast<std::size_t>((t.row % block_rows) * block_cols_dim +
                                                (t.col % block_cols_dim))] += t.value;
        }
        std::vector<gidx> colptr(static_cast<std::size_t>(d0) + 1, 0);
        std::vector<gidx> brows;
        std::vector<T> entries;
        for (gidx bj = 0; bj < d0; ++bj) {
            auto& col = cols_blocks[static_cast<std::size_t>(bj)];
            std::sort(col.begin(), col.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; });
            colptr[static_cast<std::size_t>(bj) + 1] =
                colptr[static_cast<std::size_t>(bj)] + static_cast<gidx>(col.size());
            for (auto& [bi, block] : col) {
                brows.push_back(bi);
                entries.insert(entries.end(), block.begin(), block.end());
            }
        }
        return BcscMatrix(std::move(domain), std::move(range), block_rows, block_cols_dim,
                          std::move(colptr), std::move(brows), std::move(entries));
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "bcsc"; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const auto& brows = base_row_rel_->targets();
        const gidx bvol = br_ * bd_;
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / bvol;
                const gidx within = k % bvol;
                const gidx i = brows[static_cast<std::size_t>(k0)] * br_ + within / bd_;
                const gidx j = block_col_of_[static_cast<std::size_t>(k0)] * bd_ + within % bd_;
                y[static_cast<std::size_t>(i)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const auto& brows = base_row_rel_->targets();
        const gidx bvol = br_ * bd_;
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx k0 = k / bvol;
                const gidx within = k % bvol;
                const gidx i = brows[static_cast<std::size_t>(k0)] * br_ + within / bd_;
                const gidx j = block_col_of_[static_cast<std::size_t>(k0)] * bd_ + within % bd_;
                y[static_cast<std::size_t>(j)] +=
                    entries_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(i)];
            }
        });
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        const auto& brows = base_row_rel_->targets();
        const gidx bvol = br_ * bd_;
        std::vector<Triplet<T>> ts;
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const T v = entries_[static_cast<std::size_t>(k)];
            if (v == T{}) continue;
            const gidx k0 = k / bvol;
            const gidx within = k % bvol;
            ts.push_back({brows[static_cast<std::size_t>(k0)] * br_ + within / bd_,
                          block_col_of_[static_cast<std::size_t>(k0)] * bd_ + within % bd_, v});
        }
        return ts;
    }

private:
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    IndexSpace block_kernel_;
    IndexSpace block_rows_space_;
    IndexSpace block_cols_space_;
    gidx br_;
    gidx bd_;
    std::vector<T> entries_;
    std::vector<gidx> block_col_of_;
    std::shared_ptr<ArrayFunctionRelation> base_row_rel_;
    std::shared_ptr<RowPtrRelation> base_col_rel_;
    std::shared_ptr<BlockExpandedRelation> row_rel_;
    std::shared_ptr<BlockExpandedRelation> col_rel_;
};

} // namespace kdr
