#pragma once

/// \file relations.hpp
/// Reusable row/col relation implementations backing the storage-format
/// catalog of paper Fig 3. Each class implements `kdr::Relation` with a
/// format-specific fast path, so dependent-partitioning projections never
/// need to enumerate nonzeros for the structured formats:
///
///   ArrayFunctionRelation  — col : K → D stored as an index array (COO, CSR,
///                            ELL with padding sentinel, …)
///   RowPtrRelation         — rowptr : R → [K, K] contiguous-interval maps
///                            (CSR, CSC, BCSR, BCSC)
///   QuotientRelation       — implicit π1 : R × K0 → R, i.e. k ↦ k / K0
///                            (ELL, ELL', Dense row relation)
///   RemainderRelation      — implicit π2 : R × D → D, i.e. k ↦ k mod D
///                            (Dense column relation)
///   DiagonalRelation       — DIA's implicit row relation k=(k0,i) ↦ i−offset(k0)
///   BlockExpandedRelation  — lifts a K0 → X0 relation to K = K0×B_R×B_D →
///                            X = X0×B_X (BCSR/BCSC row & col relations)
///   StencilOffsetRelation  — analytic relation of a structured stencil in
///                            offset-major layout, K = P×n; projections are
///                            closed-form interval shifts clipped to each
///                            offset's validity box (matrix-free operators)
///
/// Relations here may be *partial* (a kernel point related to no grid point):
/// padding slots in ELL/DIA are modeled as unrelated kernel points, which the
/// generalized matrix semantics of eq. (2) handles naturally.

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "partition/relation.hpp"

namespace kdr {

/// Sentinel meaning "this kernel point is related to nothing" (ELL padding).
inline constexpr gidx kNoTarget = -1;

/// Function I → J stored as an array of target indices (kNoTarget allowed).
class ArrayFunctionRelation final : public Relation {
public:
    ArrayFunctionRelation(IndexSpace source, IndexSpace target, std::vector<gidx> targets);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] const std::vector<gidx>& targets() const noexcept { return targets_; }

private:
    void build_inverse() const;

    IndexSpace source_;
    IndexSpace target_;
    std::vector<gidx> targets_;
    // Lazily built inverse adjacency (target -> sources), used by preimage_of.
    mutable bool inverse_built_ = false;
    mutable std::vector<gidx> inv_offsets_;
    mutable std::vector<gidx> inv_sources_;
};

/// Relation K ⇄ R where row i ∈ R owns the contiguous kernel interval
/// [offsets[i], offsets[i+1]). Source is K, target is R.
class RowPtrRelation final : public Relation {
public:
    RowPtrRelation(IndexSpace kernel, IndexSpace rows, std::vector<gidx> offsets);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return rows_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] const std::vector<gidx>& offsets() const noexcept { return offsets_; }

private:
    IndexSpace kernel_;
    IndexSpace rows_;
    std::vector<gidx> offsets_; // size rows+1, nondecreasing, spans [0, |K|]
};

/// Implicit projection k ↦ k / divisor (π1 of K = R × K0 in row-major order).
class QuotientRelation final : public Relation {
public:
    QuotientRelation(IndexSpace source, IndexSpace target, gidx divisor);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace source_;
    IndexSpace target_;
    gidx divisor_;
};

/// Implicit projection k ↦ k mod modulus (π2 of K = R × D in row-major order).
class RemainderRelation final : public Relation {
public:
    RemainderRelation(IndexSpace source, IndexSpace target, gidx modulus);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace source_;
    IndexSpace target_;
    gidx modulus_;
};

/// DIA's implicit row relation: kernel k = (k0, j) with j = k mod d relates
/// to range index j − offset(k0) when that lies in [0, r); otherwise the
/// kernel point is padding.
class DiagonalRelation final : public Relation {
public:
    DiagonalRelation(IndexSpace kernel, IndexSpace rows, gidx domain_size,
                     std::vector<gidx> diag_offsets);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return rows_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace kernel_;
    IndexSpace rows_;
    gidx d_; // domain size (diagonal length as stored)
    std::vector<gidx> diag_offsets_;
};

/// Lifts a block-level relation K0 → X0 to the element level for blocked
/// formats: kernel k = (k0·B_R + b_r)·B_D + b_d relates to x = x0·B + b,
/// where x0 ranges over the base relation's images of k0 and b is the block
/// coordinate selected by `use_row_block` (b_r for the row relation, b_d for
/// the column relation).
class BlockExpandedRelation final : public Relation {
public:
    BlockExpandedRelation(IndexSpace kernel, IndexSpace target,
                          std::shared_ptr<const Relation> base, gidx block_rows,
                          gidx block_cols, gidx target_block, bool use_row_block);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace kernel_;
    IndexSpace target_;
    std::shared_ptr<const Relation> base_; // K0 -> X0
    gidx br_;
    gidx bd_;
    gidx tb_;       // target block size B (B_R or B_D)
    bool use_row_block_;
};

/// Analytic relation of a structured stencil whose kernel is laid out
/// offset-major: K = P × n with slot k = p·n + i holding the coefficient of
/// offset p applied at grid point i (row-major linearization
/// i = (x·ny + y)·nz + z). Slot (p, i) participates only when the shifted
/// neighbor i + δ_p stays inside the grid, i.e. when i lies in the per-offset
/// validity box V_p; clipped boundary slots relate to nothing, like ELL
/// padding. With `shift_targets` the relation maps valid slots to the
/// neighbor i + δ_p (column relation K → D); without, to the row i itself
/// (row relation K → R). Both projections are closed-form interval
/// arithmetic — no nonzero enumeration, no stored adjacency.
class StencilOffsetRelation final : public Relation {
public:
    /// `extents` = {nx, ny, nz} (unused trailing axes 1), `offsets` the
    /// per-block coordinate deltas {dx, dy, dz} in kernel block order.
    StencilOffsetRelation(IndexSpace kernel, IndexSpace grid, std::array<gidx, 3> extents,
                          std::vector<std::array<gidx, 3>> offsets, bool shift_targets);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return grid_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] gidx block_count() const noexcept { return static_cast<gidx>(blocks_.size()); }
    [[nodiscard]] gidx grid_size() const noexcept { return n_; }

    /// Linearized index shift δ_p of offset block p (0 for row relations —
    /// the shift is what distinguishes the two relation roles).
    [[nodiscard]] gidx delta(gidx p) const {
        return shift_ ? blocks_[static_cast<std::size_t>(p)].delta : 0;
    }

    /// Raw geometric shift of block p, independent of the relation role.
    [[nodiscard]] gidx block_delta(gidx p) const {
        return blocks_[static_cast<std::size_t>(p)].delta;
    }

    /// Visit the valid (unclipped) sub-intervals of `local` — an interval of
    /// grid coordinates — for offset block p, in ascending order. This is the
    /// shared clipping kernel of both projections and of the matrix-free
    /// multiply: a run emitted here is safe to apply as y[i] += c·x[i + δ_p]
    /// for every i in the run.
    template <typename F>
    void for_each_valid(gidx p, Interval local, F&& emit) const {
        const Block& b = blocks_[static_cast<std::size_t>(p)];
        local.lo = std::max<gidx>(local.lo, 0);
        local.hi = std::min<gidx>(local.hi, n_);
        if (local.lo >= local.hi) return;
        if (b.rx.lo >= b.rx.hi || b.ry.lo >= b.ry.hi || b.rz.lo >= b.rz.hi) return;
        const gidx plane = ny_ * nz_;
        const bool y_full = b.ry.lo == 0 && b.ry.hi == ny_;
        const bool z_full = b.rz.lo == 0 && b.rz.hi == nz_;
        if (y_full && z_full) {
            // The box is contiguous in linearized order: one run per call.
            const gidx lo = std::max(local.lo, b.rx.lo * plane);
            const gidx hi = std::min(local.hi, b.rx.hi * plane);
            if (lo < hi) emit(Interval{lo, hi});
            return;
        }
        const gidx x_lo = std::max(b.rx.lo, local.lo / plane);
        const gidx x_hi = std::min(b.rx.hi, (local.hi - 1) / plane + 1);
        for (gidx x = x_lo; x < x_hi; ++x) {
            const gidx xbase = x * plane;
            if (z_full) {
                // Contiguous y-range within this x-plane.
                const gidx lo = std::max(local.lo, xbase + b.ry.lo * nz_);
                const gidx hi = std::min(local.hi, xbase + b.ry.hi * nz_);
                if (lo < hi) emit(Interval{lo, hi});
                continue;
            }
            const gidx rel_lo = std::max<gidx>(local.lo - xbase, 0);
            const gidx rel_hi = std::min<gidx>(local.hi - xbase, plane);
            if (rel_lo >= rel_hi) continue;
            const gidx y_lo = std::max(b.ry.lo, rel_lo / nz_);
            const gidx y_hi = std::min(b.ry.hi, (rel_hi - 1) / nz_ + 1);
            for (gidx y = y_lo; y < y_hi; ++y) {
                const gidx base = xbase + y * nz_;
                const gidx lo = std::max(local.lo, base + b.rz.lo);
                const gidx hi = std::min(local.hi, base + b.rz.hi);
                if (lo < hi) emit(Interval{lo, hi});
            }
        }
    }

private:
    // Per-offset geometry: linearized shift and per-axis valid coordinate
    // ranges V_p = rx × ry × rz (the rows whose shifted neighbor is in-grid).
    struct Block {
        gidx delta;
        Interval rx, ry, rz;
    };

    IndexSpace kernel_;
    IndexSpace grid_;
    gidx nx_, ny_, nz_;
    gidx n_; // nx·ny·nz == |grid|
    std::vector<Block> blocks_;
    bool shift_;
};

} // namespace kdr
