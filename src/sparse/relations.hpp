#pragma once

/// \file relations.hpp
/// Reusable row/col relation implementations backing the storage-format
/// catalog of paper Fig 3. Each class implements `kdr::Relation` with a
/// format-specific fast path, so dependent-partitioning projections never
/// need to enumerate nonzeros for the structured formats:
///
///   ArrayFunctionRelation  — col : K → D stored as an index array (COO, CSR,
///                            ELL with padding sentinel, …)
///   RowPtrRelation         — rowptr : R → [K, K] contiguous-interval maps
///                            (CSR, CSC, BCSR, BCSC)
///   QuotientRelation       — implicit π1 : R × K0 → R, i.e. k ↦ k / K0
///                            (ELL, ELL', Dense row relation)
///   RemainderRelation      — implicit π2 : R × D → D, i.e. k ↦ k mod D
///                            (Dense column relation)
///   DiagonalRelation       — DIA's implicit row relation k=(k0,i) ↦ i−offset(k0)
///   BlockExpandedRelation  — lifts a K0 → X0 relation to K = K0×B_R×B_D →
///                            X = X0×B_X (BCSR/BCSC row & col relations)
///
/// Relations here may be *partial* (a kernel point related to no grid point):
/// padding slots in ELL/DIA are modeled as unrelated kernel points, which the
/// generalized matrix semantics of eq. (2) handles naturally.

#include <memory>
#include <optional>
#include <vector>

#include "partition/relation.hpp"

namespace kdr {

/// Sentinel meaning "this kernel point is related to nothing" (ELL padding).
inline constexpr gidx kNoTarget = -1;

/// Function I → J stored as an array of target indices (kNoTarget allowed).
class ArrayFunctionRelation final : public Relation {
public:
    ArrayFunctionRelation(IndexSpace source, IndexSpace target, std::vector<gidx> targets);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] const std::vector<gidx>& targets() const noexcept { return targets_; }

private:
    void build_inverse() const;

    IndexSpace source_;
    IndexSpace target_;
    std::vector<gidx> targets_;
    // Lazily built inverse adjacency (target -> sources), used by preimage_of.
    mutable bool inverse_built_ = false;
    mutable std::vector<gidx> inv_offsets_;
    mutable std::vector<gidx> inv_sources_;
};

/// Relation K ⇄ R where row i ∈ R owns the contiguous kernel interval
/// [offsets[i], offsets[i+1]). Source is K, target is R.
class RowPtrRelation final : public Relation {
public:
    RowPtrRelation(IndexSpace kernel, IndexSpace rows, std::vector<gidx> offsets);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return rows_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] const std::vector<gidx>& offsets() const noexcept { return offsets_; }

private:
    IndexSpace kernel_;
    IndexSpace rows_;
    std::vector<gidx> offsets_; // size rows+1, nondecreasing, spans [0, |K|]
};

/// Implicit projection k ↦ k / divisor (π1 of K = R × K0 in row-major order).
class QuotientRelation final : public Relation {
public:
    QuotientRelation(IndexSpace source, IndexSpace target, gidx divisor);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace source_;
    IndexSpace target_;
    gidx divisor_;
};

/// Implicit projection k ↦ k mod modulus (π2 of K = R × D in row-major order).
class RemainderRelation final : public Relation {
public:
    RemainderRelation(IndexSpace source, IndexSpace target, gidx modulus);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace source_;
    IndexSpace target_;
    gidx modulus_;
};

/// DIA's implicit row relation: kernel k = (k0, j) with j = k mod d relates
/// to range index j − offset(k0) when that lies in [0, r); otherwise the
/// kernel point is padding.
class DiagonalRelation final : public Relation {
public:
    DiagonalRelation(IndexSpace kernel, IndexSpace rows, gidx domain_size,
                     std::vector<gidx> diag_offsets);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return rows_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace kernel_;
    IndexSpace rows_;
    gidx d_; // domain size (diagonal length as stored)
    std::vector<gidx> diag_offsets_;
};

/// Lifts a block-level relation K0 → X0 to the element level for blocked
/// formats: kernel k = (k0·B_R + b_r)·B_D + b_d relates to x = x0·B + b,
/// where x0 ranges over the base relation's images of k0 and b is the block
/// coordinate selected by `use_row_block` (b_r for the row relation, b_d for
/// the column relation).
class BlockExpandedRelation final : public Relation {
public:
    BlockExpandedRelation(IndexSpace kernel, IndexSpace target,
                          std::shared_ptr<const Relation> base, gidx block_rows,
                          gidx block_cols, gidx target_block, bool use_row_block);

    [[nodiscard]] const IndexSpace& source() const override { return kernel_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    IndexSpace kernel_;
    IndexSpace target_;
    std::shared_ptr<const Relation> base_; // K0 -> X0
    gidx br_;
    gidx bd_;
    gidx tb_;       // target block size B (B_R or B_D)
    bool use_row_block_;
};

} // namespace kdr
