#pragma once

/// \file linear_operator.hpp
/// The KDR view of a sparse matrix (paper §3, Fig 1): numbers indexed by a
/// kernel space `K`, plus a column relation `col ⊆ K×D` and row relation
/// `row ⊆ K×R` that place them on the `R × D` grid. Relations may be
/// many-to-many (a stored number aliased into several grid cells) and partial
/// (padding slots related to nothing), exactly as eq. (2) allows.
///
/// Kernels operate on *global* vectors: `x` spans the whole domain space and
/// `y` the whole range space, and piece-restricted variants limit work to a
/// kernel subset — this is what index-task launches dispatch per color.

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "geometry/accessor.hpp"
#include "geometry/index_space.hpp"
#include "geometry/interval_set.hpp"
#include "partition/relation.hpp"
#include "support/error.hpp"

namespace kdr {

/// One nonzero in coordinate form: value at (row, col).
template <typename T>
struct Triplet {
    gidx row = 0;
    gidx col = 0;
    T value{};

    friend bool operator==(const Triplet& a, const Triplet& b) {
        return a.row == b.row && a.col == b.col && a.value == b.value;
    }
};

/// Byte-stream profile of one SpMV through a format: matrix bytes moved per
/// stored entry (values + indexing structure), gathered-input bytes per
/// stored entry, and row-structure + output bytes per row. The defaults
/// describe CSR-like materialized formats — 8 B value + 8 B column index per
/// entry, 8 B gathered x per entry, 8 B rowptr + 16 B y read/write per row —
/// and reproduce the historical 24·nnz + 24·rows roofline exactly. Computed
/// (matrix-free) operators zero the per-entry matrix stream.
struct SpmvCostModel {
    double matrix_bytes_per_entry = 16.0;
    double gather_bytes_per_entry = 8.0;
    double bytes_per_row = 24.0;
};

template <typename T>
class LinearOperator {
public:
    virtual ~LinearOperator() = default;

    /// The solution-vector space `D`.
    [[nodiscard]] virtual const IndexSpace& domain() const = 0;
    /// The right-hand-side space `R`.
    [[nodiscard]] virtual const IndexSpace& range() const = 0;
    /// The nonzero-entry space `K`.
    [[nodiscard]] virtual const IndexSpace& kernel() const = 0;

    /// Column relation `col ⊆ K × D` (Fig 3 column).
    [[nodiscard]] virtual std::shared_ptr<const Relation> col_relation() const = 0;
    /// Row relation `row ⊆ K × R` (Fig 3 column).
    [[nodiscard]] virtual std::shared_ptr<const Relation> row_relation() const = 0;

    /// Human-readable format name ("csr", "coo", ...).
    [[nodiscard]] virtual const char* format_name() const = 0;

    /// Bytes this format moves per SpMV, fed into the simulated roofline by
    /// the planner. Materialized formats keep the CSR-like default.
    [[nodiscard]] virtual SpmvCostModel spmv_cost_model() const { return {}; }

    /// y += A x over the whole kernel space. Vectors arrive as `VecView`s so
    /// the runtime can hand kernels privilege-checked accessors in validation
    /// mode; plain spans and vectors convert implicitly (hook-free).
    virtual void multiply_add(VecView<const T> x, VecView<T> y) const {
        multiply_add_piece(kernel().universe(), x, y);
    }

    /// y += Aᵀ x over the whole kernel space (adjoint for real entries).
    virtual void multiply_add_transpose(VecView<const T> x, VecView<T> y) const {
        multiply_add_transpose_piece(kernel().universe(), x, y);
    }

    /// y += A x restricted to the kernel subset `piece` — the unit of work an
    /// index-task launch dispatches per color.
    virtual void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                                    VecView<T> y) const = 0;

    /// y += Aᵀ x restricted to a kernel subset.
    virtual void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                              VecView<T> y) const = 0;

    /// Emit every nonzero as a (row, col, value) triplet. Aliased entries are
    /// emitted once per (row, col) placement.
    [[nodiscard]] virtual std::vector<Triplet<T>> to_triplets() const = 0;

    /// Number of stored numbers (|K|, including any padding slots).
    [[nodiscard]] gidx stored_count() const { return kernel().size(); }

    /// diag[i] += A_ii for square operators. Default: via triplets.
    virtual void add_diagonal(std::span<T> diag) const {
        KDR_REQUIRE(domain().size() == range().size(),
                    "add_diagonal: operator is not square (", range().size(), "x",
                    domain().size(), ")");
        KDR_REQUIRE(static_cast<gidx>(diag.size()) == range().size(),
                    "add_diagonal: diag size mismatch");
        for (const Triplet<T>& t : to_triplets())
            if (t.row == t.col) diag[static_cast<std::size_t>(t.row)] += t.value;
    }

protected:
    void check_vectors(VecView<const T> x, VecView<T> y) const {
        KDR_REQUIRE(static_cast<gidx>(x.size()) == domain().size(),
                    "multiply_add: |x| ", x.size(), " != |D| ", domain().size());
        KDR_REQUIRE(static_cast<gidx>(y.size()) == range().size(), "multiply_add: |y| ",
                    y.size(), " != |R| ", range().size());
    }
    void check_vectors_transpose(VecView<const T> x, VecView<T> y) const {
        KDR_REQUIRE(static_cast<gidx>(x.size()) == range().size(),
                    "multiply_add_transpose: |x| ", x.size(), " != |R| ", range().size());
        KDR_REQUIRE(static_cast<gidx>(y.size()) == domain().size(),
                    "multiply_add_transpose: |y| ", y.size(), " != |D| ", domain().size());
    }
};

/// Sort triplets row-major and sum duplicates (standard assembly semantics).
template <typename T>
std::vector<Triplet<T>> coalesce_triplets(std::vector<Triplet<T>> ts) {
    std::sort(ts.begin(), ts.end(), [](const Triplet<T>& a, const Triplet<T>& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    std::vector<Triplet<T>> out;
    out.reserve(ts.size());
    for (const Triplet<T>& t : ts) {
        if (!out.empty() && out.back().row == t.row && out.back().col == t.col) {
            out.back().value += t.value;
        } else {
            out.push_back(t);
        }
    }
    return out;
}

/// Dense reference multiply for testing: y += A x computed from triplets.
template <typename T>
void reference_multiply_add(const std::vector<Triplet<T>>& ts, const std::vector<T>& x,
                            std::vector<T>& y) {
    for (const Triplet<T>& t : ts)
        y[static_cast<std::size_t>(t.row)] += t.value * x[static_cast<std::size_t>(t.col)];
}

} // namespace kdr
