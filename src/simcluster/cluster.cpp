#include "simcluster/cluster.hpp"

#include <algorithm>

#include "obs/profile.hpp"

namespace kdr::sim {

SimCluster::SimCluster(MachineDesc desc) : desc_(desc) {
    desc_.validate();
    const std::size_t procs_per_node = 1 + static_cast<std::size_t>(desc_.gpus_per_node);
    procs_.resize(static_cast<std::size_t>(desc_.nodes) * procs_per_node);
    nic_send_.resize(static_cast<std::size_t>(desc_.nodes));
    nic_recv_.resize(static_cast<std::size_t>(desc_.nodes));
    util_.resize(static_cast<std::size_t>(desc_.nodes));
    cpu_occupied_.assign(static_cast<std::size_t>(desc_.nodes), 0);
}

std::size_t SimCluster::proc_slot(ProcId p) const {
    KDR_REQUIRE(p.node >= 0 && p.node < desc_.nodes, "SimCluster: node ", p.node,
                " out of range");
    const std::size_t procs_per_node = 1 + static_cast<std::size_t>(desc_.gpus_per_node);
    if (p.kind == ProcKind::CPU) {
        KDR_REQUIRE(p.index == 0, "SimCluster: CPU processors are aggregated per node");
        return static_cast<std::size_t>(p.node) * procs_per_node;
    }
    KDR_REQUIRE(p.index >= 0 && p.index < desc_.gpus_per_node, "SimCluster: gpu index ",
                p.index, " out of range");
    return static_cast<std::size_t>(p.node) * procs_per_node + 1 +
           static_cast<std::size_t>(p.index);
}

double SimCluster::duration_of(ProcId p, const TaskCost& cost) const {
    if (p.kind == ProcKind::GPU) {
        return std::max(cost.flops / desc_.gpu_flops, cost.bytes / desc_.gpu_mem_bw) +
               desc_.gpu_launch_overhead;
    }
    const int total = desc_.cpu_cores_per_node;
    const int free_cores =
        std::max(1, total - cpu_occupied_[static_cast<std::size_t>(p.node)]);
    const double frac = static_cast<double>(free_cores);
    return std::max(cost.flops / (desc_.cpu_core_flops * frac),
                    cost.bytes / (desc_.cpu_core_mem_bw * frac));
}

double SimCluster::exec(ProcId p, double ready, const TaskCost& cost, double launch_overhead) {
    return exec_duration(p, ready, duration_of(p, cost) + launch_overhead);
}

double SimCluster::exec_duration(ProcId p, double ready, double duration) {
    KDR_REQUIRE(duration >= 0.0, "SimCluster: negative task duration");
    Timeline& t = procs_[proc_slot(p)];
    const double start = std::max(ready, t.free_at);
    t.free_at = start + duration;
    t.busy += duration;
    return t.free_at;
}

double SimCluster::transfer(int src_node, int dst_node, double ready, double bytes) {
    KDR_REQUIRE(src_node >= 0 && src_node < desc_.nodes && dst_node >= 0 &&
                    dst_node < desc_.nodes,
                "SimCluster: transfer endpoint out of range");
    KDR_REQUIRE(bytes >= 0.0, "SimCluster: negative transfer size");
    if (src_node == dst_node) {
        // Intra-node staging copy; no NIC involvement, no serialization
        // against other copies (DMA engines).
        return ready + bytes / desc_.intra_node_bandwidth;
    }
    Timeline& snd = nic_send_[static_cast<std::size_t>(src_node)];
    Timeline& rcv = nic_recv_[static_cast<std::size_t>(dst_node)];
    double wire = bytes / desc_.nic_bandwidth;
    double fault_latency = 0.0;
    if (fault_ != nullptr && fault_->active()) {
        // NIC faults are pure timing: a degraded link stretches the wire
        // time, and each dropped attempt re-occupies the wire and pays
        // another propagation latency. Data still arrives (the retransmit
        // cap bounds the delay), so functional results are unaffected.
        const TransferFault f = fault_->sample_transfer();
        wire *= f.degrade * (1.0 + static_cast<double>(f.retransmits));
        fault_latency = static_cast<double>(f.retransmits) * desc_.nic_latency;
    }
    // Send and receive directions occupy their queues independently (full-
    // duplex links with switch buffering): the sender streams as soon as its
    // send direction is free; delivery additionally waits for the receive
    // direction. Seizing both queues for a common interval would create
    // artificial convoys across chains of neighbor exchanges.
    //
    // Each direction pays a fixed per-message overhead before the payload
    // streams, so n small messages cost n overheads where one coalesced
    // message pays it once. Payloads above the eager threshold additionally
    // pay a rendezvous handshake (request + grant, one latency each way)
    // before the wire time starts.
    const double ovh = desc_.nic_message_overhead;
    const double handshake =
        bytes > desc_.nic_eager_threshold ? 2.0 * desc_.nic_latency : 0.0;
    const double send_start = std::max(ready, snd.free_at);
    snd.free_at = send_start + ovh + wire;
    snd.busy += ovh + wire;
    const double recv_start = std::max(send_start + handshake, rcv.free_at);
    rcv.free_at = recv_start + ovh + wire;
    rcv.busy += ovh + wire;
    const double arrival = recv_start + ovh + wire + desc_.nic_latency + fault_latency;
    last_arrival_ = std::max(last_arrival_, arrival);
    if (profiler_ != nullptr) {
        // Pure observation from times computed above. The recv event extends
        // to the *arrival* (propagation latency included) so a consumer whose
        // start was bounded by this delivery finds an event ending exactly at
        // its start during critical-path reconstruction.
        std::vector<obs::EventId> recv_deps;
        if (handshake > 0.0) {
            recv_deps.push_back(profiler_->record(
                src_node, profiler_->lane_handshake(), obs::EventCategory::Handshake,
                "rendezvous", send_start, send_start + handshake, {}, bytes, dst_node));
        }
        recv_deps.push_back(profiler_->record(src_node, profiler_->lane_nic_send(),
                                              obs::EventCategory::Transfer, "send",
                                              send_start, snd.free_at, {}, bytes, dst_node));
        profiler_->record(dst_node, profiler_->lane_nic_recv(), obs::EventCategory::Transfer,
                          "recv", recv_start, arrival, std::move(recv_deps), bytes, src_node);
    }
    return arrival;
}

double SimCluster::analyze(int node, double cost) {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    KDR_REQUIRE(cost >= 0.0, "SimCluster: negative analysis cost");
    Timeline& u = util_[static_cast<std::size_t>(node)];
    u.free_at += cost;
    u.busy += cost;
    if (profiler_ != nullptr && cost > 0.0) {
        profiler_->record(node, profiler_->lane_analysis(), obs::EventCategory::Runtime,
                          "analysis", u.free_at - cost, u.free_at);
    }
    return u.free_at;
}

double SimCluster::proc_free_at(ProcId p) const { return procs_[proc_slot(p)].free_at; }

double SimCluster::horizon() const {
    double h = last_arrival_;
    for (const Timeline& t : procs_) h = std::max(h, t.free_at);
    for (const Timeline& t : nic_send_) h = std::max(h, t.free_at);
    for (const Timeline& t : nic_recv_) h = std::max(h, t.free_at);
    // The per-node analysis pipelines bound replay throughput: on the trace
    // fast path tasks no longer *wait* for the pipeline, but the runtime work
    // still has to happen somewhere, so it can be the last thing running.
    // (On the analysis path tasks finish at or after their analysis_done, so
    // this term never dominates there.)
    for (const Timeline& t : util_) h = std::max(h, t.free_at);
    return h;
}

double SimCluster::proc_busy(ProcId p) const { return procs_[proc_slot(p)].busy; }

double SimCluster::nic_send_busy(int node) const {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    return nic_send_[static_cast<std::size_t>(node)].busy;
}

double SimCluster::nic_recv_busy(int node) const {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    return nic_recv_[static_cast<std::size_t>(node)].busy;
}

double SimCluster::analysis_busy(int node) const {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    return util_[static_cast<std::size_t>(node)].busy;
}

void SimCluster::set_cpu_occupancy(int node, int occupied_cores) {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    KDR_REQUIRE(occupied_cores >= 0 && occupied_cores <= desc_.cpu_cores_per_node,
                "SimCluster: occupancy ", occupied_cores, " out of [0,",
                desc_.cpu_cores_per_node, "]");
    cpu_occupied_[static_cast<std::size_t>(node)] = occupied_cores;
}

int SimCluster::cpu_occupancy(int node) const {
    KDR_REQUIRE(node >= 0 && node < desc_.nodes, "SimCluster: node out of range");
    return cpu_occupied_[static_cast<std::size_t>(node)];
}

void SimCluster::reset() {
    for (Timeline& t : procs_) t = {};
    for (Timeline& t : nic_send_) t = {};
    for (Timeline& t : nic_recv_) t = {};
    for (Timeline& t : util_) t = {};
    std::fill(cpu_occupied_.begin(), cpu_occupied_.end(), 0);
    last_arrival_ = 0.0;
}

} // namespace kdr::sim
