#pragma once

/// \file cluster.hpp
/// Discrete-event simulation of the machine's resource timelines: one serial
/// execution queue per processor and one NIC queue per node and direction.
/// The host has a single core (see DESIGN.md), so all "parallelism" in this
/// reproduction is *virtual time*: callers ask "this work, ready at time t,
/// on this resource — when does it finish?", and the cluster advances the
/// per-resource clocks. Overlap of communication and computation arises
/// naturally because NIC queues and processor queues advance independently —
/// this asymmetry versus the barrier-separated BSP substrate is exactly the
/// paper's P1.

#include <memory>
#include <vector>

#include "simcluster/fault_model.hpp"
#include "simcluster/machine.hpp"

namespace kdr::obs {
class Profiler;
} // namespace kdr::obs

namespace kdr::sim {

class SimCluster {
public:
    explicit SimCluster(MachineDesc desc);

    [[nodiscard]] const MachineDesc& machine() const noexcept { return desc_; }

    /// Execute `cost` on processor `p`, not before `ready`. Returns finish time.
    /// `launch_overhead` is added to the busy time (dynamic vs traced launch).
    double exec(ProcId p, double ready, const TaskCost& cost, double launch_overhead);

    /// Execute a fixed wall-clock duration (for modeled non-roofline work).
    double exec_duration(ProcId p, double ready, double duration);

    /// Transfer `bytes` from `src_node` to `dst_node`, not before `ready`.
    /// Returns arrival time. Same-node transfers use the intra-node staging
    /// bandwidth and no NIC occupancy.
    double transfer(int src_node, int dst_node, double ready, double bytes);

    /// Run `cost` seconds of dependence-analysis work through node's runtime
    /// pipeline (Legion's utility-processor stage). Launch analysis
    /// serializes per node but runs ahead of execution — deferred execution
    /// hides it whenever per-iteration compute exceeds per-iteration
    /// analysis, which is the paper's P1 overhead-hiding claim.
    double analyze(int node, double cost);

    /// Roofline duration of `cost` on processor `p` (no queueing).
    [[nodiscard]] double duration_of(ProcId p, const TaskCost& cost) const;

    /// Earliest time processor `p` could begin new work.
    [[nodiscard]] double proc_free_at(ProcId p) const;

    /// Latest event time across all resources ("makespan so far").
    [[nodiscard]] double horizon() const;

    /// Total busy seconds accumulated on processor `p` (utilization probes).
    [[nodiscard]] double proc_busy(ProcId p) const;

    /// Total NIC occupancy accumulated per node and direction, and total
    /// dependence-analysis pipeline occupancy (communication/overhead rows in
    /// SolveReport; available with or without a profiler attached).
    [[nodiscard]] double nic_send_busy(int node) const;
    [[nodiscard]] double nic_recv_busy(int node) const;
    [[nodiscard]] double analysis_busy(int node) const;

    /// Attach (or, with nullptr, detach) an event profiler. Observation only:
    /// the cluster records NIC send/recv occupancy, rendezvous handshakes,
    /// and analysis-pipeline intervals from times it already computed, so
    /// attaching a profiler cannot move any virtual-time event. The profiler
    /// must outlive the cluster or be detached first.
    void set_profiler(obs::Profiler* profiler) noexcept { profiler_ = profiler; }
    [[nodiscard]] obs::Profiler* profiler() const noexcept { return profiler_; }

    /// Attach (or, with nullptr, detach) a fault model. NIC degradation and
    /// drop are applied inside transfer(); task-level failures and slowdowns
    /// are sampled by the runtime layer through fault_model(), which also
    /// owns the retry policy. reset() leaves the model (and its RNG streams)
    /// untouched — re-attach a fresh model for an independent repetition.
    void set_fault_model(std::shared_ptr<FaultModel> model) noexcept {
        fault_ = std::move(model);
    }
    [[nodiscard]] FaultModel* fault_model() const noexcept { return fault_.get(); }

    /// Fig 10 background load: mark `occupied` of the node's CPU cores as
    /// taken by an external application from the current horizon onward. The
    /// aggregated CPU processor's rate scales by free/total cores.
    void set_cpu_occupancy(int node, int occupied_cores);
    [[nodiscard]] int cpu_occupancy(int node) const;

    /// Reset all timelines to zero (new benchmark repetition).
    void reset();

private:
    struct Timeline {
        double free_at = 0.0;
        double busy = 0.0;
    };

    [[nodiscard]] std::size_t proc_slot(ProcId p) const;

    MachineDesc desc_;
    std::vector<Timeline> procs_;    // node-major: [cpu, gpu0, gpu1, ...] per node
    std::vector<Timeline> nic_send_; // per node
    std::vector<Timeline> nic_recv_; // per node
    std::vector<Timeline> util_;     // per node: analysis pipeline
    std::vector<int> cpu_occupied_;  // per node
    std::shared_ptr<FaultModel> fault_; // optional; NIC faults applied in transfer()
    obs::Profiler* profiler_ = nullptr; // optional; not owned
    double last_arrival_ = 0.0;      // latest in-flight delivery
};

} // namespace kdr::sim
