#pragma once

/// \file collective.hpp
/// The allreduce model shared by every scalar reduction in the stack.
///
/// A global scalar reduction (dot products, fused update+reduce kernels, and
/// the s-step Gram batch) combines per-piece partials over a binary tree:
/// ceil(log2(p)) levels, each costing `MachineDesc::collective_hop_latency`.
/// The cost is an α-term model — the payload (8 bytes per scalar, a few
/// hundred for a Gram batch) is negligible against the per-hop latency at
/// every machine scale we simulate, which is exactly why batching many
/// scalars into one reduction is (nearly) free while extra reductions are
/// not.
///
/// Two completion semantics, selected per planner:
///
///  * nonblocking (default): the reduction is *posted* when the last partial
///    is available and completes `tree_latency` later, but only consumers of
///    the reduced scalar wait for it (a future, MPI_Iallreduce-style). Local
///    kernels with no scalar dependence overlap the tree.
///  * blocking: every rank returns from the collective together
///    (MPI_Allreduce-style) — the runtime raises a "collective front" at the
///    completion time and no subsequent task may start before it.
///
/// Both semantics charge the same tree latency; they differ only in who
/// waits. The split is observable through the `global_syncs` and
/// `allreduce_wait_seconds` counters.

#include <cmath>

#include "simcluster/machine.hpp"

namespace kdr::sim {

/// Who waits for a global scalar reduction to complete.
enum class AllreduceMode {
    nonblocking, ///< futures: only consumers of the scalar wait (default)
    blocking,    ///< barrier-like: every subsequent task waits
};

/// Tree depth for `participants` reduction partials. A single participant
/// still pays one hop (the result must reach the host/consumer side), which
/// keeps the formula continuous down to one piece.
[[nodiscard]] inline double collective_tree_hops(int participants) {
    return std::ceil(std::log2(static_cast<double>(participants < 2 ? 2 : participants)));
}

/// Latency of one posted allreduce over `participants` partials.
[[nodiscard]] inline double collective_tree_latency(const MachineDesc& machine,
                                                    int participants) {
    return collective_tree_hops(participants) * machine.collective_hop_latency;
}

/// One in-flight allreduce: posted when the last partial was produced,
/// complete one tree traversal later. The post/wait split is what makes the
/// nonblocking mode overlappable — `wait()` only matters to consumers.
struct PendingAllreduce {
    double posted = 0.0; ///< last partial available (the post time)
    double done = 0.0;   ///< posted + tree latency (the wait time)

    /// Completion as seen by a consumer that becomes ready at
    /// `consumer_ready`: the consumer stalls only for the part of the tree
    /// its own local work did not already hide.
    [[nodiscard]] double wait(double consumer_ready) const {
        return consumer_ready > done ? consumer_ready : done;
    }

    /// Tree seconds hidden behind a consumer's local work (overlap won by
    /// the nonblocking mode; 0 when the consumer was already waiting).
    [[nodiscard]] double overlapped(double consumer_ready) const {
        const double late = consumer_ready - posted;
        if (late <= 0.0) return 0.0;
        const double lat = done - posted;
        return late < lat ? late : lat;
    }
};

/// Post an allreduce whose last partial lands at `posted`.
[[nodiscard]] inline PendingAllreduce post_allreduce(const MachineDesc& machine,
                                                     int participants, double posted) {
    return {posted, posted + collective_tree_latency(machine, participants)};
}

} // namespace kdr::sim
