#pragma once

/// \file machine.hpp
/// Description of the simulated machine. The reproduction targets a
/// Lassen-class system (paper §6: POWER9 + 4×V100 per node, InfiniBand EDR);
/// `MachineDesc::lassen()` encodes published hardware figures — *not* values
/// tuned to the paper's curves (see DESIGN.md "Calibration constants").
///
/// Throughput numbers are bytes/s and flop/s; times are seconds.

#include <cstdint>
#include <string>

#include "geometry/point.hpp"
#include "support/error.hpp"

namespace kdr::sim {

enum class ProcKind : std::uint8_t {
    CPU, ///< one node's CPU cores, aggregated (rate scales with free cores)
    GPU, ///< one GPU
};

/// Identifies a processor in the simulated machine.
struct ProcId {
    int node = 0;
    ProcKind kind = ProcKind::GPU;
    int index = 0; ///< GPU index within node; 0 for the aggregated CPU

    friend constexpr bool operator==(const ProcId& a, const ProcId& b) {
        return a.node == b.node && a.kind == b.kind && a.index == b.index;
    }
};

struct MachineDesc {
    int nodes = 1;
    int gpus_per_node = 4;
    int cpu_cores_per_node = 40;

    // Per-GPU rates (fp64).
    double gpu_flops = 7.0e12;    ///< V100 fp64 peak
    double gpu_mem_bw = 9.0e11;   ///< V100 HBM2 ~900 GB/s
    double gpu_launch_overhead = 5.0e-6;

    // Per-CPU-core rates.
    double cpu_core_flops = 1.0e10;
    double cpu_core_mem_bw = 4.25e9; ///< ~170 GB/s node aggregate over 40 cores

    // Network (per node, per direction).
    double nic_latency = 1.5e-6;     ///< InfiniBand EDR one-way
    double nic_bandwidth = 1.25e10;  ///< 100 Gb/s
    double intra_node_bandwidth = 5.0e10; ///< NVLink2/PCIe staging
    /// Fixed per-message cost each NIC direction pays before the payload
    /// streams (descriptor setup, protocol processing). This is what makes
    /// one coalesced message cheaper than many small ones.
    double nic_message_overhead = 1.0e-6;
    /// Messages larger than this many bytes use the rendezvous protocol: a
    /// request/grant handshake (two one-way latencies) precedes the payload
    /// instead of buffering it eagerly at the receiver.
    double nic_eager_threshold = 16384.0;

    // Task-oriented runtime costs (Legion-like).
    double task_launch_overhead = 8.0e-6;   ///< dynamic dependence analysis + dispatch
    double traced_launch_overhead = 1.5e-6; ///< replayed from a memoized trace

    // Bulk-synchronous runtime costs (MPI-like).
    double collective_hop_latency = 2.0e-6; ///< per tree level of barrier/allreduce

    [[nodiscard]] int total_gpus() const { return nodes * gpus_per_node; }

    /// Lassen-like preset at a given node count.
    static MachineDesc lassen(int node_count) {
        KDR_REQUIRE(node_count > 0, "MachineDesc: need at least one node");
        MachineDesc m;
        m.nodes = node_count;
        return m;
    }

    void validate() const {
        KDR_REQUIRE(nodes > 0 && gpus_per_node >= 0 && cpu_cores_per_node > 0,
                    "MachineDesc: bad shape");
        KDR_REQUIRE(gpu_flops > 0 && gpu_mem_bw > 0 && cpu_core_flops > 0 &&
                        cpu_core_mem_bw > 0 && nic_bandwidth > 0,
                    "MachineDesc: nonpositive rates");
        KDR_REQUIRE(nic_message_overhead >= 0.0 && nic_eager_threshold >= 0.0,
                    "MachineDesc: negative NIC message costs");
    }
};

/// Cost of one task in machine-independent units; the cluster converts it to
/// seconds with a roofline: time = max(flops/rate, bytes/bandwidth).
struct TaskCost {
    double flops = 0.0;
    double bytes = 0.0;

    friend constexpr TaskCost operator+(TaskCost a, const TaskCost& b) {
        return {a.flops + b.flops, a.bytes + b.bytes};
    }
};

/// Roofline costs of the KSM building-block kernels. Byte counts assume
/// double entries and 64-bit indices, counting each operand stream once.
struct KernelCosts {
    /// y += A x for a piece with `nnz` stored entries and `rows` rows. Byte
    /// streams are parameterized so storage formats can report their own
    /// profile (matrix-free operators move zero matrix bytes per entry); the
    /// defaults reproduce the CSR streams — entries + column indices per
    /// entry, gathered x per entry, rowptr + y read/write per row.
    static TaskCost spmv(gidx nnz, gidx rows, double matrix_bytes_per_entry = 16.0,
                         double gather_bytes_per_entry = 8.0, double bytes_per_row = 24.0) {
        const double n = static_cast<double>(nnz);
        const double r = static_cast<double>(rows);
        return {2.0 * n,
                n * (matrix_bytes_per_entry + gather_bytes_per_entry) + r * bytes_per_row};
    }
    /// dst = a*src + dst over n elements.
    static TaskCost axpy(gidx n) {
        const double d = static_cast<double>(n);
        return {2.0 * d, 24.0 * d};
    }
    /// partial dot product over n elements.
    static TaskCost dot(gidx n) {
        const double d = static_cast<double>(n);
        return {2.0 * d, 16.0 * d};
    }
    /// dst = src over n elements.
    static TaskCost copy(gidx n) {
        const double d = static_cast<double>(n);
        return {0.0, 16.0 * d};
    }
    /// dst = a*dst over n elements.
    static TaskCost scal(gidx n) {
        const double d = static_cast<double>(n);
        return {static_cast<double>(n), 16.0 * d};
    }
    /// Fused vector update + partial reduction over n elements (axpy_dot /
    /// xpay_norm2): the update's store feeds the reduction from registers, so
    /// the fused kernel streams one pass instead of two. `extra_stream` adds
    /// the third input vector when the reduction partner is a distinct field.
    static TaskCost fused_update_reduce(gidx n, bool extra_stream) {
        const double d = static_cast<double>(n);
        return {4.0 * d, (extra_stream ? 32.0 : 24.0) * d};
    }
};

} // namespace kdr::sim
