#pragma once

/// \file fault_model.hpp
/// Seeded fault injection for the discrete-event cluster. The model covers
/// the three failure classes a production deployment of the paper's stack
/// would face (§7 future work; the resilience experiments of §6 assume none
/// of them):
///
///  * transient task failure — an execution attempt dies partway through,
///    burning a fraction of its duration on the processor; the runtime layer
///    retries it against the pre-task region versions;
///  * node slowdown (stragglers) — an attempt runs at a multiple of its
///    roofline duration;
///  * NIC degradation / packet drop — an inter-node transfer streams at a
///    fraction of the link bandwidth, or drops entirely and retransmits.
///
/// All sampling is derived from a single user seed through *independent*
/// sub-streams (task-side and NIC-side), so attaching NIC faults never
/// perturbs the task-fault schedule and a given `FaultSpec` reproduces the
/// same fault history bit-for-bit on every run. A spec with all rates zero
/// samples nothing at all: timings and numerics are identical to running
/// with no model attached.

#include <cstdint>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace kdr::sim {

/// Rates and magnitudes of the injected faults. Rates are per sampled event
/// (per task attempt, per inter-node transfer).
struct FaultSpec {
    std::uint64_t seed = 0;

    // Transient task failures.
    double task_fail_prob = 0.0;  ///< probability a task attempt fails
    double task_waste_min = 0.25; ///< failed attempt burns this fraction of its
    double task_waste_max = 1.0;  ///<   duration, uniform in [min, max]

    // Node slowdown / stragglers.
    double slowdown_prob = 0.0;   ///< probability an attempt runs degraded
    double slowdown_factor = 4.0; ///< duration multiplier when it does

    // NIC degradation / drop.
    double nic_degrade_prob = 0.0;   ///< probability a transfer streams degraded
    double nic_degrade_factor = 4.0; ///< wire-time multiplier when it does
    double nic_drop_prob = 0.0;      ///< probability each transfer attempt drops
    int nic_max_retransmits = 4;     ///< cap on consecutive drops of one transfer

    [[nodiscard]] bool active() const noexcept {
        return task_fail_prob > 0.0 || slowdown_prob > 0.0 || nic_degrade_prob > 0.0 ||
               nic_drop_prob > 0.0;
    }
};

/// Sampled fate of one task attempt.
struct TaskFault {
    bool fail = false;
    double waste_frac = 0.0; ///< fraction of the duration burnt when failing
    double slowdown = 1.0;   ///< duration multiplier (1 = healthy)
};

/// Sampled fate of one inter-node transfer.
struct TransferFault {
    double degrade = 1.0; ///< wire-time multiplier (1 = healthy)
    int retransmits = 0;  ///< dropped attempts before the one that lands
};

class FaultModel {
public:
    explicit FaultModel(FaultSpec spec)
        : spec_(spec),
          task_rng_(SplitMix64(spec.seed ^ 0x7461736b5f666c74ULL).next()),
          nic_rng_(SplitMix64(spec.seed ^ 0x6e69635f64726f70ULL).next()) {
        auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
        KDR_REQUIRE(prob(spec_.task_fail_prob) && prob(spec_.slowdown_prob) &&
                        prob(spec_.nic_degrade_prob) && prob(spec_.nic_drop_prob),
                    "FaultModel: probabilities must lie in [0, 1]");
        KDR_REQUIRE(spec_.task_waste_min >= 0.0 && spec_.task_waste_max <= 1.0 &&
                        spec_.task_waste_min <= spec_.task_waste_max,
                    "FaultModel: waste fraction range must satisfy 0 <= min <= max <= 1");
        KDR_REQUIRE(spec_.slowdown_factor >= 1.0 && spec_.nic_degrade_factor >= 1.0,
                    "FaultModel: degradation factors must be >= 1");
        KDR_REQUIRE(spec_.nic_max_retransmits >= 0,
                    "FaultModel: retransmit cap must be >= 0");
    }

    [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] bool active() const noexcept { return spec_.active(); }

    /// Sample the fate of one task attempt. Zero-rate components draw
    /// nothing from the stream, so an all-zero spec is exactly a no-op.
    TaskFault sample_task() noexcept {
        TaskFault f;
        if (spec_.task_fail_prob > 0.0 && task_rng_.uniform() < spec_.task_fail_prob) {
            f.fail = true;
            f.waste_frac = task_rng_.uniform(spec_.task_waste_min, spec_.task_waste_max);
            ++task_faults_;
        }
        if (spec_.slowdown_prob > 0.0 && task_rng_.uniform() < spec_.slowdown_prob) {
            f.slowdown = spec_.slowdown_factor;
            ++stragglers_;
        }
        return f;
    }

    /// Sample the fate of one inter-node transfer (NIC sub-stream).
    TransferFault sample_transfer() noexcept {
        TransferFault f;
        if (spec_.nic_degrade_prob > 0.0 && nic_rng_.uniform() < spec_.nic_degrade_prob) {
            f.degrade = spec_.nic_degrade_factor;
            ++nic_degraded_;
        }
        if (spec_.nic_drop_prob > 0.0) {
            while (f.retransmits < spec_.nic_max_retransmits &&
                   nic_rng_.uniform() < spec_.nic_drop_prob) {
                ++f.retransmits;
            }
            nic_retransmits_ += static_cast<std::uint64_t>(f.retransmits);
        }
        return f;
    }

    // Injection tallies (what actually fired, for reports and assertions).
    [[nodiscard]] std::uint64_t task_faults() const noexcept { return task_faults_; }
    [[nodiscard]] std::uint64_t stragglers() const noexcept { return stragglers_; }
    [[nodiscard]] std::uint64_t nic_degraded() const noexcept { return nic_degraded_; }
    [[nodiscard]] std::uint64_t nic_retransmits() const noexcept { return nic_retransmits_; }

private:
    FaultSpec spec_;
    Rng task_rng_; ///< task failure + slowdown stream
    Rng nic_rng_;  ///< NIC degradation + drop stream
    std::uint64_t task_faults_ = 0;
    std::uint64_t stragglers_ = 0;
    std::uint64_t nic_degraded_ = 0;
    std::uint64_t nic_retransmits_ = 0;
};

} // namespace kdr::sim
