/// Ablation: partitioning strategy (the paper's -vp knob and the canonical-
/// partition parallelism of §5). Sweeps pieces-per-GPU for a fixed problem
/// and machine; too few pieces underuse processors, matching pieces to GPUs
/// is optimal here, and oversubscription pays task overhead for no gain
/// (dependence-driven scheduling cannot exploit pieces beyond processors on
/// this dense, regular workload). Changing the strategy requires no solver
/// or library changes — the P3 claim exercised as a benchmark.
///
/// Usage: bench_ablation_partition [-nodes 16] [-log 26] [-it 40]

#include <iostream>

#include "harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 16));
    const int lg = static_cast<int>(args.get_int("log", 26));
    const int timed = static_cast<int>(args.get_int("it", 40));
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);

    std::cout << "=== Ablation: pieces (-vp) sweep, CG on " << spec.describe() << ", "
              << machine.total_gpus() << " GPUs ===\n\n";
    Table table({"pieces", "pieces/GPU", "us/it"});
    for (Color mult : {1, 2, 4, 8, 16, 32}) {
        const Color pieces = machine.total_gpus() * mult / 4;
        if (pieces < 1) continue;
        bench::LegionStencilSystem sys =
            bench::make_legion_stencil(spec, machine, pieces, bench::TraceMode::None);
        const auto cg_owner = core::make_solver<double>("cg", *sys.planner);
        core::Solver<double>& cg = *cg_owner;
        const double t = bench::measure_per_iteration(*sys.runtime, cg, 10, timed);
        table.add_row({std::to_string(pieces),
                       Table::num(static_cast<double>(pieces) / machine.total_gpus(), 2),
                       bench::us(t)});
    }
    table.print(std::cout);
    return 0;
}
