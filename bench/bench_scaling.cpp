/// Node-count scaling — the sweep the paper's artifact description runs
/// ("repeated for each node count, scaling from 1 to 256 in powers of two").
/// Two regimes:
///
///  * strong scaling: a fixed 2^26-unknown 5pt-2D CG problem across
///    1..64 nodes — speedup saturates once per-piece work no longer hides
///    runtime overhead and halo latency;
///  * weak scaling: fixed 2^22 unknowns per GPU — flat lines are perfect;
///    growth exposes the communication/analysis terms.
///
/// LegionSolvers and the PETSc-like baseline run side by side.
///
/// Usage: bench_scaling [-maxnodes 64] [-it 30] [-stronglog 26] [-weaklog 22]

#include <iostream>

#include "baselines/ksp.hpp"
#include "harness.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

double legion_time(const stencil::Spec& spec, const sim::MachineDesc& machine, int timed) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::None);
    core::CgSolver<double> cg(*sys.planner);
    return bench::measure_per_iteration(*sys.runtime, cg, 10, timed);
}

double petsc_time(const stencil::Spec& spec, const sim::MachineDesc& machine, int timed) {
    sim::SimCluster cluster(machine);
    bsp::BspWorld world(cluster, sim::ProcKind::GPU);
    baselines::StencilBaseline engine(world, spec, baselines::Profile::petsc(), false);
    baselines::KspSolver solver(engine, baselines::Method::CG);
    for (int i = 0; i < 10; ++i) solver.step();
    const double t0 = engine.now();
    for (int i = 0; i < timed; ++i) solver.step();
    return (engine.now() - t0) / timed;
}

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const int maxnodes = static_cast<int>(args.get_int("maxnodes", 64));
    const int timed = static_cast<int>(args.get_int("it", 30));
    const int stronglog = static_cast<int>(args.get_int("stronglog", 26));
    const int weaklog = static_cast<int>(args.get_int("weaklog", 22));

    std::cout << "=== Strong scaling: CG, 5pt-2D, 2^" << stronglog << " unknowns ===\n";
    {
        kdr::Table table({"nodes", "GPUs", "legion us/it", "petsc us/it", "legion speedup"});
        double base = -1.0;
        for (int nodes = 1; nodes <= maxnodes; nodes *= 2) {
            const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            const stencil::Spec spec =
                stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << stronglog);
            const double lg = legion_time(spec, machine, timed);
            const double pt = petsc_time(spec, machine, timed);
            if (base < 0) base = lg;
            table.add_row({std::to_string(nodes), std::to_string(machine.total_gpus()),
                           kdr::bench::us(lg), kdr::bench::us(pt),
                           kdr::Table::num(base / lg, 2) + "x"});
        }
        table.print(std::cout);
    }

    std::cout << "\n=== Weak scaling: CG, 5pt-2D, 2^" << weaklog << " unknowns per GPU ===\n";
    {
        kdr::Table table({"nodes", "GPUs", "unknowns", "legion us/it", "petsc us/it"});
        for (int nodes = 1; nodes <= maxnodes; nodes *= 2) {
            const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            const gidx total = (gidx{1} << weaklog) * machine.total_gpus();
            const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, total);
            const double lg = legion_time(spec, machine, timed);
            const double pt = petsc_time(spec, machine, timed);
            table.add_row({std::to_string(nodes), std::to_string(machine.total_gpus()),
                           kdr::Table::eng(static_cast<double>(spec.unknowns()), 0),
                           kdr::bench::us(lg), kdr::bench::us(pt)});
        }
        table.print(std::cout);
    }
    return 0;
}
