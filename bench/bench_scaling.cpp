/// Node-count scaling — the sweep the paper's artifact description runs
/// ("repeated for each node count, scaling from 1 to 256 in powers of two").
/// Three regimes:
///
///  * strong scaling: a fixed 2^26-unknown 5pt-2D CG problem across
///    1..maxnodes — speedup saturates once per-piece work no longer hides
///    runtime overhead and halo latency;
///  * weak scaling: fixed 2^22 unknowns per GPU — flat lines are perfect;
///    growth exposes the communication/analysis terms;
///  * communication-avoiding: classic CG vs CA-CG(s) on the strong-scaling
///    problem, with per-row global-sync counts and non-overlapped allreduce
///    wait — the s-step tradeoff (s x fewer global syncs, bigger basis
///    blocks) as a function of node count.
///
/// LegionSolvers and the PETSc-like baseline run side by side.
///
/// Usage: bench_scaling [-maxnodes 64] [-it 30] [-stronglog 26] [-weaklog 22]
///                      [-json out.json] [-smoke] [-gate]
///
/// -json writes every row (all three regimes) as a JSON document; the CA
/// rows carry syncs_per_it / allreduce_wait_us_per_it so the sync-reduction
/// claim is machine-checkable. -smoke shrinks the sweep for CI. -gate runs
/// only the CA regime at 64..maxnodes nodes and exits nonzero unless, at
/// every gated node count, CA-CG (s >= 4) performs at least 3x fewer global
/// syncs than classic CG and beats it on time-per-iteration, with the win
/// widening as nodes grow (the nightly 256-node acceptance check).

#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/ksp.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

double legion_time(const stencil::Spec& spec, const sim::MachineDesc& machine, int timed) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::None);
    const auto cg_owner = bench::make_solver("cg", *sys.planner);
    core::Solver<double>& cg = *cg_owner;
    return bench::measure_per_iteration(*sys.runtime, cg, 10, timed);
}

double petsc_time(const stencil::Spec& spec, const sim::MachineDesc& machine, int timed) {
    sim::SimCluster cluster(machine);
    bsp::BspWorld world(cluster, sim::ProcKind::GPU);
    baselines::StencilBaseline engine(world, spec, baselines::Profile::petsc(), false);
    baselines::KspSolver solver(engine, baselines::Method::CG);
    for (int i = 0; i < 10; ++i) solver.step();
    const double t0 = engine.now();
    for (int i = 0; i < timed; ++i) solver.step();
    return (engine.now() - t0) / timed;
}

/// One (solver, machine) arm of the communication-avoiding comparison.
struct CaArm {
    double us_per_it = 0.0;        ///< virtual microseconds per iteration
    double syncs_per_it = 0.0;     ///< completed allreduces per iteration
    double wait_us_per_it = 0.0;   ///< non-overlapped allreduce wait per iteration
};

/// Run `solver` (any registry spec) traced on the stencil system and measure
/// time + global-sync counters over the timed window. All arms use the
/// trace fast path — the production configuration the s-block loops must
/// replay under.
CaArm ca_arm(const stencil::Spec& spec, const sim::MachineDesc& machine,
             const std::string& solver, int timed) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::Fast);
    std::unique_ptr<core::Solver<double>> s = bench::make_solver(solver, *sys.planner);
    const int period = bench::trace_period(solver);
    const int warmup = std::max(10, 2 * std::max(period, 3) + 1);
    for (int i = 0; i < warmup; ++i) s->step();
    const obs::Registry& m = sys.runtime->metrics();
    const double t0 = sys.runtime->current_time();
    const double sync0 = m.counter_value("global_syncs");
    const double wait0 = m.counter_value("allreduce_wait_seconds");
    for (int i = 0; i < timed; ++i) s->step();
    const double iters = static_cast<double>(timed) * s->iterations_per_step();
    CaArm r;
    r.us_per_it = (sys.runtime->current_time() - t0) / iters * 1e6;
    r.syncs_per_it = (m.counter_value("global_syncs") - sync0) / iters;
    r.wait_us_per_it = (m.counter_value("allreduce_wait_seconds") - wait0) / iters * 1e6;
    return r;
}

struct Row {
    std::string regime;
    int nodes = 0;
    int gpus = 0;
    std::string solver;
    double us_per_it = 0.0;
    double syncs_per_it = 0.0;
    double wait_us_per_it = 0.0;
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
    obs::json::Value doc;
    auto& arr = doc.array();
    for (const Row& r : rows) {
        obs::json::Value::Object o;
        o.emplace("regime", obs::json::Value(r.regime));
        o.emplace("nodes", obs::json::Value(static_cast<double>(r.nodes)));
        o.emplace("gpus", obs::json::Value(static_cast<double>(r.gpus)));
        o.emplace("solver", obs::json::Value(r.solver));
        o.emplace("us_per_it", obs::json::Value(r.us_per_it));
        o.emplace("syncs_per_it", obs::json::Value(r.syncs_per_it));
        o.emplace("allreduce_wait_us_per_it", obs::json::Value(r.wait_us_per_it));
        arr.emplace_back(std::move(o));
    }
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "bench_scaling: cannot open '", path, "'");
    out << doc.dump() << "\n";
    KDR_REQUIRE(out.good(), "bench_scaling: write to '", path, "' failed");
    std::cout << "rows written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const bool smoke = args.get_flag("smoke");
    const bool gate = args.get_flag("gate");
    const int maxnodes = static_cast<int>(args.get_int("maxnodes", smoke ? 4 : 64));
    const int timed = static_cast<int>(args.get_int("it", smoke ? 5 : 30));
    const int stronglog = static_cast<int>(args.get_int("stronglog", smoke ? 18 : 26));
    const int weaklog = static_cast<int>(args.get_int("weaklog", smoke ? 14 : 22));
    const std::string json_path = args.get_string("json", "");
    std::vector<Row> rows;

    const stencil::Spec strong_spec =
        stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << stronglog);

    if (!gate) {
        std::cout << "=== Strong scaling: CG, 5pt-2D, 2^" << stronglog << " unknowns ===\n";
        kdr::Table table({"nodes", "GPUs", "legion us/it", "petsc us/it", "legion speedup"});
        double base = -1.0;
        for (int nodes = 1; nodes <= maxnodes; nodes *= 2) {
            const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            const double lg = legion_time(strong_spec, machine, timed);
            const double pt = petsc_time(strong_spec, machine, timed);
            if (base < 0) base = lg;
            table.add_row({std::to_string(nodes), std::to_string(machine.total_gpus()),
                           kdr::bench::us(lg), kdr::bench::us(pt),
                           kdr::Table::num(base / lg, 2) + "x"});
            rows.push_back({"strong", nodes, machine.total_gpus(), "cg", lg * 1e6, 0, 0});
        }
        table.print(std::cout);

        std::cout << "\n=== Weak scaling: CG, 5pt-2D, 2^" << weaklog
                  << " unknowns per GPU ===\n";
        kdr::Table wtable({"nodes", "GPUs", "unknowns", "legion us/it", "petsc us/it"});
        for (int nodes = 1; nodes <= maxnodes; nodes *= 2) {
            const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            const gidx total = (gidx{1} << weaklog) * machine.total_gpus();
            const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, total);
            const double lg = legion_time(spec, machine, timed);
            const double pt = petsc_time(spec, machine, timed);
            wtable.add_row({std::to_string(nodes), std::to_string(machine.total_gpus()),
                            kdr::Table::eng(static_cast<double>(spec.unknowns()), 0),
                            kdr::bench::us(lg), kdr::bench::us(pt)});
            rows.push_back({"weak", nodes, machine.total_gpus(), "cg", lg * 1e6, 0, 0});
        }
        wtable.print(std::cout);
        std::cout << "\n";
    }

    // Communication-avoiding regime: the strong-scaling problem, classic CG
    // vs CA-CG(s), all arms traced. Global syncs per iteration are the
    // headline column: 2 for classic CG, 2/s for CA-CG(s).
    std::cout << "=== Communication-avoiding: CG vs CA-CG, 5pt-2D, 2^" << stronglog
              << " unknowns ===\n";
    const std::vector<std::string> arms = {"cg", "ca_cg/4", "ca_cg/8"};
    const int first_nodes = gate ? std::min(64, maxnodes) : 1;
    struct GateSample {
        int nodes = 0;
        double cg_time = 0.0, cg_syncs = 0.0;
        double ca_time = 0.0, ca_syncs = 0.0; // best s >= 4 arm by time
    };
    std::vector<GateSample> gated;
    {
        kdr::Table table({"nodes", "GPUs", "solver", "us/it", "syncs/it", "ar wait us/it",
                          "vs cg"});
        for (int nodes = first_nodes; nodes <= maxnodes; nodes *= 2) {
            const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            GateSample gs;
            gs.nodes = nodes;
            for (const std::string& arm : arms) {
                const CaArm r = ca_arm(strong_spec, machine, arm, timed);
                const bool classic = arm == "cg";
                if (classic) {
                    gs.cg_time = r.us_per_it;
                    gs.cg_syncs = r.syncs_per_it;
                } else if (gs.ca_time == 0.0 || r.us_per_it < gs.ca_time) {
                    gs.ca_time = r.us_per_it;
                    gs.ca_syncs = r.syncs_per_it;
                }
                table.add_row(
                    {std::to_string(nodes), std::to_string(machine.total_gpus()), arm,
                     kdr::Table::num(r.us_per_it, 2), kdr::Table::num(r.syncs_per_it, 3),
                     kdr::Table::num(r.wait_us_per_it, 2),
                     classic ? "1.00x" : kdr::Table::num(gs.cg_time / r.us_per_it, 2) + "x"});
                rows.push_back({"ca_strong", nodes, machine.total_gpus(), arm, r.us_per_it,
                                r.syncs_per_it, r.wait_us_per_it});
            }
            // Full runs gate at 64+ nodes; a smaller -maxnodes (the -smoke CI
            // arm) gates at the largest node count it reaches.
            if (nodes >= std::min(64, maxnodes)) gated.push_back(gs);
        }
        table.print(std::cout);
    }

    if (!json_path.empty()) write_json(json_path, rows);

    if (gate) {
        bool ok = true;
        double prev_win = 0.0;
        for (const GateSample& g : gated) {
            const double sync_ratio = g.ca_syncs > 0.0 ? g.cg_syncs / g.ca_syncs : 0.0;
            const double win = g.ca_time > 0.0 ? g.cg_time / g.ca_time : 0.0;
            const bool syncs_ok = sync_ratio >= 3.0;
            const bool time_ok = win > 1.0;
            const bool widening = prev_win == 0.0 || win >= prev_win;
            std::cout << "gate @" << g.nodes << " nodes: sync ratio "
                      << kdr::Table::num(sync_ratio, 2) << "x ("
                      << (syncs_ok ? "ok" : "FAIL: need >= 3x") << "), time win "
                      << kdr::Table::num(win, 2) << "x ("
                      << (time_ok ? "ok" : "FAIL: CA-CG slower than CG") << ", "
                      << (widening ? "widening" : "FAIL: narrower than previous") << ")\n";
            ok = ok && syncs_ok && time_ok && widening;
            prev_win = win;
        }
        if (gated.empty()) {
            std::cout << "gate: no gated node counts ran (raise -maxnodes)\n";
            ok = false;
        }
        std::cout << (ok ? "GATE PASS\n" : "GATE FAIL\n");
        return ok ? 0 : 1;
    }
    return 0;
}
