/// Ablation: GMRES restart length. The paper fixes GMRES(10) (matching
/// Trilinos' static schedule); this harness shows what the choice costs —
/// functional runs measure iterations-to-convergence, timing runs measure
/// virtual time per iteration, and their product ranks the restart lengths.
/// Longer restarts converge in fewer iterations but each Arnoldi step does
/// j+1 orthogonalization dots, so time per iteration grows within a cycle.
///
/// Usage: bench_ablation_restart [-nodes 4] [-log 16] [-tol 1e-8]

#include <iostream>
#include <memory>

#include "harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 4));
    const int lg = static_cast<int>(args.get_int("log", 12));
    const double tol = args.get_double("tol", 1e-8);

    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    std::cout << "=== Ablation: GMRES restart length, " << spec.describe() << " ===\n\n";

    Table table({"restart", "iters to " + Table::num(tol, 10), "us/it (timing)",
                 "est. total ms"});
    for (int m : {5, 10, 20, 40}) {
        // Functional run: iterations to tolerance.
        int iters;
        {
            rt::Runtime runtime(machine);
            const gidx n = spec.unknowns();
            const IndexSpace D = IndexSpace::create(n, "D");
            const rt::RegionId xr = runtime.create_region(D, "x");
            const rt::RegionId br = runtime.create_region(D, "b");
            const rt::FieldId xf = runtime.add_field<double>(xr, "v");
            const rt::FieldId bf = runtime.add_field<double>(br, "v");
            const auto b = stencil::random_rhs(n, 3);
            auto bd = runtime.field_data<double>(br, bf);
            std::copy(b.begin(), b.end(), bd.begin());
            core::Planner<double> planner(runtime);
            const Color pieces = static_cast<Color>(machine.total_gpus());
            planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
            planner.add_rhs_vector(br, bf, Partition::equal(D, pieces));
            planner.add_operator(
                std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0,
                0);
            const auto gmres_owner = core::make_solver<double>(
                "gmres/" + std::to_string(m), planner);
            core::Solver<double>& gmres = *gmres_owner;
            iters = core::solve_to_tolerance(gmres, tol, 20000);
        }
        // Timing run: virtual seconds per iteration (phantom data).
        double per_iter;
        {
            bench::LegionStencilSystem sys = bench::make_legion_stencil(
                spec, machine, static_cast<Color>(machine.total_gpus()),
                bench::TraceMode::None);
            const auto gmres_owner = core::make_solver<double>(
                "gmres/" + std::to_string(m), *sys.planner);
            core::Solver<double>& gmres = *gmres_owner;
            per_iter = bench::measure_per_iteration(*sys.runtime, gmres, m + 2, 3 * m, m);
        }
        table.add_row({std::to_string(m), std::to_string(iters), bench::us(per_iter),
                       Table::num(iters * per_iter * 1e3, 2)});
    }
    table.print(std::cout);
    std::cout << "\nthe sweet spot balances Krylov quality against per-iteration\n"
                 "orthogonalization cost; the paper's GMRES(10) is a standard choice.\n";
    return 0;
}
