/// Figure 9 reproduction: BiCGStab on a 5-point Laplacian over a 2^n × 2^n
/// grid, formulated two ways (paper §6.2):
///
///  * single-operator — one domain space D, one CSR matrix, row-block
///    partition; each piece's halo spans one full grid row (2^n points) per
///    side, because the stencil bandwidth in the global row-major layout is
///    the full row length.
///
///  * multi-operator — two domain spaces D₁, D₂ (left and right column
///    halves of the grid, each stored in its own local row-major layout),
///    two self-interaction matrices A₁₁/A₂₂ and two boundary-interaction
///    matrices A₁₂/A₂₁. Inside a half the stencil bandwidth is only the
///    *local* row length (2^{n-1}), so within-half halos halve; the seam
///    couples a non-contiguous (strided) column of the other half, ingested
///    in place with no reassembly (P4), and its communication overlaps the
///    self-interaction compute (§4.1).
///
/// Expected shape (paper Fig 9): multi-operator slower at small sizes (more
/// tasks through the analysis pipeline, extra seam messages), faster at
/// large sizes (halved bandwidth-bound halos + overlap), with a crossover
/// around 10^9 unknowns.
///
/// Usage: bench_fig9_multiop [-nodes 16] [-minn 9] [-maxn 15] [-it 30]

#include <iostream>

#include "harness.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

/// Multi-operator formulation in timing mode with analytic plans.
double run_multiop(gidx n_side, const sim::MachineDesc& machine, int timed) {
    const Color pieces_total = static_cast<Color>(machine.total_gpus());
    const Color pieces_half = pieces_total / 2;
    const gidx hy = n_side / 2; // local row length within a half
    const gidx half_elems = n_side * hy;

    auto runtime =
        std::make_unique<rt::Runtime>(machine, rt::RuntimeOptions{.materialize = false});
    const IndexSpace D1 = IndexSpace::create(half_elems, "D1");
    const IndexSpace D2 = IndexSpace::create(half_elems, "D2");
    const rt::RegionId x1r = runtime->create_region(D1, "x1");
    const rt::RegionId x2r = runtime->create_region(D2, "x2");
    const rt::RegionId b1r = runtime->create_region(D1, "b1");
    const rt::RegionId b2r = runtime->create_region(D2, "b2");
    const rt::FieldId x1f = runtime->add_field<double>(x1r, "v");
    const rt::FieldId x2f = runtime->add_field<double>(x2r, "v");
    const rt::FieldId b1f = runtime->add_field<double>(b1r, "v");
    const rt::FieldId b2f = runtime->add_field<double>(b2r, "v");

    core::PlannerOptions popts;
    popts.trace_solver_loops = false; // untraced, like the paper's Fig 9 runs
    core::Planner<double> planner(*runtime, popts);
    const Partition p1 = Partition::equal(D1, pieces_half);
    const Partition p2 = Partition::equal(D2, pieces_half);
    const core::CompId s1 = planner.add_sol_vector(x1r, x1f, p1);
    const core::CompId s2 = planner.add_sol_vector(x2r, x2f, p2);
    const core::CompId r1 = planner.add_rhs_vector(b1r, b1f, p1);
    const core::CompId r2 = planner.add_rhs_vector(b2r, b2f, p2);

    // Self-interaction operators: 5-point stencil within an nx × hy half.
    stencil::Spec half_spec;
    half_spec.kind = stencil::Kind::D2P5;
    half_spec.nx = n_side;
    half_spec.ny = hy;
    auto add_self = [&](const IndexSpace& D, const Partition& part, core::CompId s,
                        core::CompId r) {
        const stencil::CoPartition cp = stencil::co_partition(half_spec, D, D, pieces_half);
        const IndexSpace K = IndexSpace::create(half_spec.total_nnz(), "Kself");
        std::vector<IntervalSet> kp;
        gidx cursor = 0;
        for (Color c = 0; c < pieces_half; ++c) {
            const gidx take =
                std::min(cp.nnz[static_cast<std::size_t>(c)], half_spec.total_nnz() - cursor);
            kp.emplace_back(cursor, cursor + take);
            cursor += take;
        }
        core::OperatorPlan plan;
        plan.kernel_pieces = Partition(K, std::move(kp));
        plan.domain_needs = cp.halo;
        plan.row_pieces = part;
        plan.nnz = cp.nnz;
        planner.add_operator(nullptr, s, r, std::move(plan));
    };
    add_self(D1, p1, s1, r1);
    add_self(D2, p2, s2, r2);

    // Boundary-interaction operators: one kernel entry per grid row couples
    // the seam column of the other half — a strided, non-contiguous subset
    // of the source domain, consumed in place.
    auto add_seam = [&](const IndexSpace& src_space, const Partition& out_part,
                        core::CompId src_comp, core::CompId dst_comp, gidx src_col_offset) {
        const IndexSpace K = IndexSpace::create(n_side, "Kseam");
        std::vector<IntervalSet> kp, needs, rows;
        std::vector<gidx> nnz;
        for (Color c = 0; c < pieces_half; ++c) {
            const Interval r = out_part.piece(c).bounds();
            const gidx row_lo = r.lo / hy;
            const gidx row_hi = (r.hi + hy - 1) / hy;
            kp.emplace_back(row_lo, row_hi);
            std::vector<Interval> col;
            col.reserve(static_cast<std::size_t>(row_hi - row_lo));
            for (gidx x = row_lo; x < row_hi; ++x) {
                const gidx e = x * hy + src_col_offset;
                col.push_back({e, e + 1});
            }
            needs.push_back(IntervalSet::from_intervals(std::move(col)));
            // Output rows touched: the seam column of this piece.
            std::vector<Interval> out;
            out.reserve(static_cast<std::size_t>(row_hi - row_lo));
            const gidx dst_col = src_col_offset == 0 ? hy - 1 : 0;
            for (gidx x = row_lo; x < row_hi; ++x) {
                const gidx e = x * hy + dst_col;
                out.push_back({e, e + 1});
            }
            rows.push_back(IntervalSet::from_intervals(std::move(out)));
            nnz.push_back(row_hi - row_lo);
        }
        core::OperatorPlan plan;
        plan.kernel_pieces = Partition(K, std::move(kp));
        plan.domain_needs = Partition(src_space, std::move(needs));
        plan.row_pieces = Partition(out_part.space(), std::move(rows));
        plan.nnz = std::move(nnz);
        planner.add_operator(nullptr, src_comp, dst_comp, std::move(plan));
    };
    // y1's seam column (local y = hy-1) reads x2's first column (local y = 0).
    add_seam(D2, p1, s2, r1, /*src_col_offset=*/0);
    // y2's first column reads x1's seam column.
    add_seam(D1, p2, s1, r2, /*src_col_offset=*/hy - 1);

    const auto solver_owner = core::make_solver<double>("bicgstab", planner);
    core::Solver<double>& solver = *solver_owner;
    return bench::measure_per_iteration(*runtime, solver, 10, timed);
}

double run_single(gidx n_side, const sim::MachineDesc& machine, int timed) {
    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = n_side;
    spec.ny = n_side;
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::None);
    const auto solver_owner = core::make_solver<double>("bicgstab", *sys.planner);
    core::Solver<double>& solver = *solver_owner;
    return bench::measure_per_iteration(*sys.runtime, solver, 10, timed);
}

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 16));
    const int minn = static_cast<int>(args.get_int("minn", 9));
    const int maxn = static_cast<int>(args.get_int("maxn", 15));
    const int timed = static_cast<int>(args.get_int("it", 30));

    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    std::cout << "=== Figure 9: single- vs multi-operator BiCGStab, 5pt 2^n x 2^n ===\n"
              << "machine: " << nodes << " nodes (" << machine.total_gpus()
              << " GPUs); multi-op = left/right column halves + seam coupling\n\n";

    kdr::Table table({"n", "unknowns", "single us/it", "multi us/it", "multi/single"});
    double crossover = -1.0;
    double prev_ratio = -1.0;
    for (int n = minn; n <= maxn; ++n) {
        const gidx side = gidx{1} << n;
        const double single = run_single(side, machine, timed);
        const double multi = run_multiop(side, machine, timed);
        const double ratio = multi / single;
        table.add_row({std::to_string(n), kdr::Table::eng(static_cast<double>(side * side), 0),
                       kdr::bench::us(single), kdr::bench::us(multi),
                       kdr::Table::num(ratio, 3)});
        if (prev_ratio > 1.0 && ratio <= 1.0 && crossover < 0) {
            crossover = static_cast<double>(side * side);
        }
        prev_ratio = ratio;
    }
    table.print(std::cout);
    if (crossover > 0) {
        std::cout << "\ncrossover (multi-op becomes faster): ~" << kdr::Table::eng(crossover, 1)
                  << " unknowns (paper: ~1e9)\n";
    } else {
        std::cout << "\nno crossover inside the sweep (paper: ~1e9 unknowns)\n";
    }
    return 0;
}
