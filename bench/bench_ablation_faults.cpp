/// Ablation: fault injection x recovery policy. Sweeps the transient task
/// failure rate against three policies on a functional CG Poisson solve:
///
///  * none          — no runtime retries (max_task_retries = 0): any injected
///                    fault aborts the solve;
///  * retry         — the runtime's bounded in-place retry with region
///                    rollback (the default budget of 3);
///  * retry+recover — runtime retries plus the solver-level recovery
///                    controller (periodic iterate checkpoints, restart from
///                    checkpoint, GMRES(10) fallback).
///
/// For each cell the harness reports the fraction of seeds that converge,
/// the injected-fault / retry tallies, and the virtual-time overhead over
/// the fault-free baseline. The expected shape: `none` collapses as soon as
/// rates are nonzero; `retry` absorbs transient failures at the cost of
/// wasted attempts; `retry+recover` additionally survives retry exhaustion
/// by restarting from the last checkpoint.
///
/// Usage: bench_ablation_faults [-n 48] [-reps 20] [-maxiter 2000] [-smoke]
/// -smoke: small grid, moderate rates, few reps; exits nonzero unless the
/// retry policies recover >= 90% of the runs that actually saw an injected
/// transient failure (the ISSUE acceptance gate), so it doubles as a CI
/// integration test of the whole fault/recovery stack.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/recovery.hpp"
#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "simcluster/fault_model.hpp"
#include "stencil/stencil.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace kdr;

struct RunResult {
    bool converged = false;
    bool saw_fault = false;
    double makespan = 0.0;
    std::uint64_t retries = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t restores = 0;
};

enum class Policy { none, retry, retry_recover };

const char* policy_name(Policy p) {
    switch (p) {
    case Policy::none: return "none";
    case Policy::retry: return "retry";
    case Policy::retry_recover: return "retry+recover";
    }
    return "?";
}

RunResult run_once(gidx n_side, double fail_rate, std::uint64_t seed, Policy policy,
                   int max_iterations) {
    rt::RuntimeOptions ropts;
    ropts.max_task_retries = policy == Policy::none ? 0 : 3;
    rt::Runtime runtime(sim::MachineDesc::lassen(2), ropts);
    if (fail_rate > 0.0) {
        sim::FaultSpec fs;
        fs.seed = seed;
        fs.task_fail_prob = fail_rate;
        fs.slowdown_prob = fail_rate / 2.0;
        runtime.cluster().set_fault_model(std::make_shared<sim::FaultModel>(fs));
    }

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = n_side;
    spec.ny = n_side;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(R, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");

    RunResult out;
    try {
        {
            const auto b = stencil::random_rhs(n, 4242);
            auto bd = runtime.field_data<double>(br, bf);
            std::copy(b.begin(), b.end(), bd.begin());
        }
        core::Planner<double> planner(runtime);
        planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
        planner.add_rhs_vector(br, bf, Partition::equal(R, 4));
        planner.add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R)), 0, 0);

        const auto make_cg = core::make_solver_factory<double>("cg");
        if (policy == Policy::retry_recover) {
            core::RecoveryOptions recov;
            recov.checkpoint_every = 20;
            recov.max_restarts = 3;
            const core::SolveOutcome o = core::solve_with_recovery<double>(
                planner, make_cg, 1e-8, max_iterations, recov,
                core::make_solver_factory<double>("gmres/10"));
            out.converged = o.status == core::SolveStatus::converged;
        } else {
            const auto cg_owner = core::make_solver<double>("cg", planner);
            core::Solver<double>& cg = *cg_owner;
            const core::SolveResult r = core::solve(cg, 1e-8, max_iterations);
            out.converged = r.status == core::SolveStatus::converged;
        }
    } catch (const rt::TaskFailedError&) {
        out.converged = false;
    }
    const obs::Registry& m = runtime.metrics();
    out.saw_fault = m.counter_value("task_faults_injected") > 0.0;
    out.retries = static_cast<std::uint64_t>(m.counter_value("task_retries"));
    out.exhausted = static_cast<std::uint64_t>(m.counter_value("task_retries_exhausted"));
    out.restores = static_cast<std::uint64_t>(m.counter_value("solver_restores"));
    out.makespan = runtime.current_time();
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const bool smoke = args.get_flag("smoke");
    const gidx n_side = args.get_int("n", smoke ? 24 : 48);
    const int reps = static_cast<int>(args.get_int("reps", smoke ? 12 : 20));
    const int max_iterations = static_cast<int>(args.get_int("maxiter", 2000));

    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 0.02, 0.05}
              : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1};
    const std::vector<Policy> policies = {Policy::none, Policy::retry,
                                          Policy::retry_recover};

    std::cout << "fault-injection ablation: " << n_side << "x" << n_side
              << " Poisson CG, " << reps << " seeds per cell\n";
    Table table({"fail rate", "policy", "converged", "faulted runs", "recovered",
                 "retries", "exhausted", "restores", "time x"});

    double baseline = 0.0;
    bool gate_ok = true;
    for (const double rate : rates) {
        for (const Policy policy : policies) {
            int converged = 0;
            int faulted = 0;
            int recovered = 0; // converged among runs that saw a fault
            std::uint64_t retries = 0;
            std::uint64_t exhausted = 0;
            std::uint64_t restores = 0;
            double makespan = 0.0;
            for (int rep = 0; rep < reps; ++rep) {
                const RunResult r = run_once(n_side, rate,
                                             1000 + static_cast<std::uint64_t>(rep),
                                             policy, max_iterations);
                converged += r.converged ? 1 : 0;
                faulted += r.saw_fault ? 1 : 0;
                recovered += (r.saw_fault && r.converged) ? 1 : 0;
                retries += r.retries;
                exhausted += r.exhausted;
                restores += r.restores;
                makespan += r.makespan;
            }
            makespan /= reps;
            if (rate == 0.0 && policy == Policy::none) baseline = makespan;
            table.add_row({Table::num(rate, 2), policy_name(policy),
                           std::to_string(converged) + "/" + std::to_string(reps),
                           std::to_string(faulted), std::to_string(recovered),
                           std::to_string(retries), std::to_string(exhausted),
                           std::to_string(restores),
                           Table::num(baseline > 0.0 ? makespan / baseline : 1.0, 2)});

            // Acceptance gate: >= 90% of the runs that actually saw an
            // injected fault must converge. The full recovery stack is held
            // to this at every rate; plain retry only at smoke's moderate
            // rates — exhausting a budget of 3 at a 10% failure rate is the
            // ablation's expected signal, not a defect.
            const bool gated = policy == Policy::retry_recover ||
                               (smoke && policy == Policy::retry);
            if (gated && faulted > 0) {
                const double frac = static_cast<double>(recovered) / faulted;
                if (frac < 0.9) {
                    gate_ok = false;
                    std::cout << "GATE FAIL: rate " << rate << " policy "
                              << policy_name(policy) << " recovered only " << recovered
                              << "/" << faulted << " faulted runs\n";
                }
            }
            // Fault-free runs must always converge, under every policy.
            if (rate == 0.0 && converged != reps) {
                gate_ok = false;
                std::cout << "GATE FAIL: fault-free runs did not all converge\n";
            }
        }
    }
    table.print(std::cout);
    if (!gate_ok) {
        std::cout << "FAIL: recovery gate violated\n";
        return 1;
    }
    std::cout << "PASS\n";
    return 0;
}
