/// Solver-as-a-service throughput: open-loop Poisson arrival sweeps over
/// one simulated cluster, locating the saturation knee and measuring what
/// the shared-trace cache buys in steady state.
///
/// Two arms run the *same* request stream at each arrival rate:
///
///  * **warm** — solve contexts pooled per (structure, lane): after the
///    first job of a structure, every job replays the captured dependence
///    schedule (one pin-verified instance, then the analysis-skipping fast
///    path);
///  * **cold** — a fresh context per job: every job re-records its schedule
///    and pays full dependence analysis (a service without the cache).
///
/// Expected shape: warm analysis cost per job collapses to ~0 while cold
/// pays the full pipeline every job, so warm sustains equal-or-higher
/// throughput at every rate and saturates later. Job numerics are identical
/// either way — replay is scheduling-only — which the gate checks bitwise.
///
/// Usage: bench_service [-nodes 2] [-slots 4] [-pieces 2] [-n 24]
///                      [-jobs 120] [-seed 42] [-smoke]
/// -smoke: small stream, then exit nonzero unless (a) warm and cold residual
/// histories match bitwise job for job, (b) warm beats cold on steady-state
/// analysis cost per job (skipped under KDR_VALIDATE: validation pins full
/// analysis), and (c) warm throughput is at least cold throughput.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace kdr;

struct StreamParams {
    int jobs = 120;
    gidx n = 24;          ///< grid edge; two structures alternate n and 3n/4
    double rate = 0.0;    ///< mean arrivals per virtual second
    std::uint64_t seed = 42;
};

/// Open-loop Poisson stream: exponential interarrivals, two tenants (gold
/// weighted 3x), two structures, mixed solvers, per-job rhs seeds.
std::vector<service::SolveRequest> make_stream(const StreamParams& p) {
    Rng rng(p.seed);
    std::vector<service::SolveRequest> reqs;
    reqs.reserve(static_cast<std::size_t>(p.jobs));
    double t = 0.0;
    for (int i = 0; i < p.jobs; ++i) {
        // Inverse-CDF exponential; uniform() is in [0, 1) so 1-u is safe.
        if (p.rate > 0.0) t += -std::log(1.0 - rng.uniform()) / p.rate;
        service::SolveRequest req;
        req.id = static_cast<std::uint64_t>(i);
        req.tenant = i % 3 == 0 ? "gold" : "bronze";
        req.arrival = t;
        req.spec.kind = stencil::Kind::D2P5;
        req.spec.nx = i % 2 == 0 ? p.n : (3 * p.n) / 4;
        req.spec.ny = req.spec.nx;
        req.solver = i % 4 == 0 ? "bicgstab" : "cg";
        req.rhs_seed = 1000 + static_cast<std::uint64_t>(i);
        req.tol = 1e-8;
        req.max_iterations = 300;
        reqs.push_back(std::move(req));
    }
    return reqs;
}

struct ArmResult {
    obs::ServiceReport report;
    std::vector<service::JobResult> jobs;
};

ArmResult run_arm(const sim::MachineDesc& machine, const StreamParams& p, int slots,
                  Color pieces, bool share_contexts) {
    rt::Runtime runtime(machine);
    service::ServiceOptions opts;
    opts.slots = slots;
    opts.pieces = pieces;
    opts.max_queue = 1u << 20; // closed gate arms: nothing rejected
    opts.share_contexts = share_contexts;
    opts.tenant_weights = {{"gold", 3.0}, {"bronze", 1.0}};
    service::ServiceEngine engine(runtime, opts);
    for (service::SolveRequest& req : make_stream(p)) engine.submit(std::move(req));
    ArmResult r;
    r.jobs = engine.run();
    r.report = engine.report();
    return r;
}

bool validation_forced() {
    const char* e = std::getenv("KDR_VALIDATE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

/// Bitwise identity of per-job residual histories between the two arms.
bool histories_identical(const ArmResult& warm, const ArmResult& cold) {
    if (warm.jobs.size() != cold.jobs.size()) return false;
    for (const service::JobResult& w : warm.jobs) {
        const service::JobResult* c = nullptr;
        for (const service::JobResult& x : cold.jobs) {
            if (x.request.id == w.request.id) c = &x;
        }
        if (c == nullptr || w.outcome.history.size() != c->outcome.history.size()) {
            std::cout << "HISTORY SHAPE MISMATCH at job " << w.request.id << "\n";
            return false;
        }
        for (std::size_t i = 0; i < w.outcome.history.size(); ++i) {
            if (w.outcome.history[i].residual != c->outcome.history[i].residual) {
                std::cout << "HISTORY MISMATCH at job " << w.request.id << " sample " << i
                          << ": warm " << w.outcome.history[i].residual << " vs cold "
                          << c->outcome.history[i].residual << "\n";
                return false;
            }
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const bool smoke = args.get_flag("smoke");

    const int nodes = static_cast<int>(args.get_int("nodes", 2));
    const int slots = static_cast<int>(args.get_int("slots", smoke ? 2 : 4));
    const auto pieces = static_cast<Color>(args.get_int("pieces", 2));
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);

    StreamParams base;
    base.jobs = static_cast<int>(args.get_int("jobs", smoke ? 24 : 120));
    base.n = args.get_int("n", smoke ? 16 : 24);
    base.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    // Calibrate the sweep around measured capacity: a closed-loop run (all
    // arrivals at t = 0) saturates the lanes, and its throughput is the
    // service rate mu. The open-loop sweep then crosses the knee at rho ~ 1.
    StreamParams calib = base;
    calib.rate = 0.0;
    const ArmResult closed = run_arm(machine, calib, slots, pieces, true);
    const double mu = closed.report.solves_per_second;
    std::cout << "machine: " << nodes << " nodes, " << slots << " lanes x " << pieces
              << " pieces; closed-loop capacity " << Table::num(mu, 2) << " solves/s\n\n";

    Table sweep({"rho", "arm", "solves/s", "p50 ms", "p99 ms", "util %", "hit %",
                 "analysis us/job"});
    bool ok = true;
    const std::vector<double> rhos =
        smoke ? std::vector<double>{0.5, 1.5} : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.25, 1.5};
    for (const double rho : rhos) {
        StreamParams p = base;
        p.rate = rho * mu;
        const ArmResult warm = run_arm(machine, p, slots, pieces, true);
        const ArmResult cold = run_arm(machine, p, slots, pieces, false);
        for (const auto* arm : {&warm, &cold}) {
            const obs::ServiceReport& r = arm->report;
            sweep.add_row({Table::num(rho, 2), arm == &warm ? "warm" : "cold",
                           Table::num(r.solves_per_second, 2),
                           Table::num(r.latency_p50 * 1e3, 3),
                           Table::num(r.latency_p99 * 1e3, 3),
                           Table::num(r.utilization * 100.0, 1),
                           Table::num(r.trace_cache_hit_rate * 100.0, 1),
                           Table::num(r.analysis_seconds_per_job * 1e6, 2)});
        }

        // Gates (every rate): identical numerics; warm no slower than cold;
        // warm steady-state analysis cheaper than cold unless validation
        // pins both arms to the full pipeline.
        if (!histories_identical(warm, cold)) ok = false;
        if (warm.report.solves_per_second < 0.999 * cold.report.solves_per_second) {
            std::cout << "THROUGHPUT REGRESSION at rho " << rho << ": warm "
                      << warm.report.solves_per_second << " < cold "
                      << cold.report.solves_per_second << " solves/s\n";
            ok = false;
        }
        if (!validation_forced()) {
            if (warm.report.analysis_seconds_per_job >=
                0.5 * cold.report.analysis_seconds_per_job) {
                std::cout << "ANALYSIS-COST GATE FAILED at rho " << rho << ": warm "
                          << warm.report.analysis_seconds_per_job << " s/job vs cold "
                          << cold.report.analysis_seconds_per_job << " s/job\n";
                ok = false;
            }
            if (warm.report.trace_cache_hit_rate < 0.5) {
                std::cout << "HIT-RATE GATE FAILED at rho " << rho << ": "
                          << warm.report.trace_cache_hit_rate << "\n";
                ok = false;
            }
        }
    }
    sweep.print(std::cout);

    // Full service report for the last warm closed-loop run, as an exemplar
    // of what a deployment would export.
    std::cout << "\n";
    closed.report.print(std::cout);

    if (smoke) {
        std::cout << "\nsmoke gates: " << (ok ? "PASS" : "FAIL") << "\n";
        return ok ? EXIT_SUCCESS : EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
