/// Ablation: dynamic tracing (paper §5, Lee et al. [12]). The Fig 8 runs use
/// dynamic dependence analysis; this harness measures what replaying
/// memoized traces buys per iteration across problem sizes. Expected shape:
/// large wins at small sizes (the analysis pipeline is the floor), no
/// effect at large sizes (analysis is hidden behind compute — the paper's
/// P1 "overhead hidden by spare cycles" claim, visible directly here).
///
/// Usage: bench_ablation_tracing [-nodes 16] [-minlog 16] [-maxlog 28] [-it 40]

#include <iostream>

#include "harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 16));
    const int minlog = static_cast<int>(args.get_int("minlog", 16));
    const int maxlog = static_cast<int>(args.get_int("maxlog", 28));
    const int timed = static_cast<int>(args.get_int("it", 40));
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);

    std::cout << "=== Ablation: dynamic tracing (CG, 5pt-2D, " << machine.total_gpus()
              << " GPUs) ===\n"
              << "dynamic analysis: " << machine.task_launch_overhead * 1e6
              << " us/task; traced replay: " << machine.traced_launch_overhead * 1e6
              << " us/task\n\n";

    Table table({"unknowns", "dynamic us/it", "traced us/it", "speedup"});
    for (int lg = minlog; lg <= maxlog; lg += 2) {
        const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
        double times[2];
        for (int traced = 0; traced < 2; ++traced) {
            bench::LegionStencilSystem sys = bench::make_legion_stencil(
                spec, machine, static_cast<Color>(machine.total_gpus()));
            core::CgSolver<double> cg(*sys.planner);
            times[traced] =
                bench::measure_per_iteration(*sys.runtime, cg, 10, timed, traced == 1);
        }
        table.add_row({Table::eng(static_cast<double>(spec.unknowns()), 0),
                       bench::us(times[0]), bench::us(times[1]),
                       Table::num(times[0] / times[1], 3) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nshape: tracing wins where analysis is the per-iteration floor (small\n"
                 "problems) and is neutral once compute hides the pipeline (large ones).\n";
    return 0;
}
