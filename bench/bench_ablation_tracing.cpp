/// Ablation: dynamic tracing (paper §5, Lee et al. [12]). The Fig 8 runs use
/// dynamic dependence analysis; this harness measures what replaying
/// memoized traces buys per iteration across problem sizes, split into the
/// two ingredients the runtime provides:
///
///  * verify-only replay — signatures are checked but every launch still
///    walks dependence analysis and pays its full dynamic cost (the
///    pre-fast-path behavior, kept as an ablation point; it times the same
///    as not tracing at all);
///  * fast-path replay — the captured dependence schedule is reused,
///    analysis is skipped entirely (`trace_depanalysis_skipped` counts it),
///    and only this path earns the reduced traced launch overhead;
///
/// each crossed with fused (axpy+dot / xpay+norm² single launches) vs
/// unfused solver kernels. Expected shape: large wins at small sizes (the
/// analysis pipeline is the per-iteration floor — the stall column drops to
/// ~0 under the fast path), no effect at large sizes (analysis is hidden
/// behind compute — the paper's P1 "overhead hidden by spare cycles" claim,
/// visible directly here). A functional CG run asserts that tracing and
/// fusion leave the convergence history bitwise unchanged.
///
/// Usage: bench_ablation_tracing [-nodes 16] [-minlog 16] [-maxlog 28]
///                               [-it 40] [-solver cg] [-smoke]
/// -smoke: tiny sizes and 2 timed iterations — a CI-friendly pass that
/// still exercises record, capture, fast replay, and the fused kernels.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <vector>

#include "harness.hpp"
#include "sparse/csr.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

struct ModeResult {
    double per_iter = 0.0;  ///< virtual seconds per timed iteration
    double stall = 0.0;     ///< analysis-stall seconds per timed iteration
    double skipped = 0.0;   ///< launches that skipped analysis, per iteration
};

ModeResult run_mode(const stencil::Spec& spec, const sim::MachineDesc& machine,
                    const std::string& solver_name, int timed, bench::TraceMode mode,
                    bool fused) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), mode, fused);
    auto solver = bench::make_solver(solver_name, *sys.planner);
    const int period = bench::trace_period(solver_name);
    // Warm past record + capture so the timed loop sees steady state.
    for (int i = 0; i < std::max(10, 2 * std::max(period, 3) + 1); ++i) solver->step();
    const obs::Registry& m = sys.runtime->metrics();
    const double stall0 = m.counter_value("analysis_stall_seconds");
    const double skip0 = m.counter_value("trace_depanalysis_skipped");
    const double t0 = sys.runtime->current_time();
    for (int i = 0; i < timed; ++i) solver->step();
    ModeResult r;
    r.per_iter = (sys.runtime->current_time() - t0) / timed;
    r.stall = (m.counter_value("analysis_stall_seconds") - stall0) / timed;
    r.skipped = (m.counter_value("trace_depanalysis_skipped") - skip0) / timed;
    return r;
}

/// Functional CG on a small Poisson system: the convergence history with
/// fast-path tracing + fused kernels must match the untraced, unfused run
/// bitwise — tracing replays the *same* schedule and fusion performs the
/// *same* arithmetic in the same order.
bool check_convergence_identity(const sim::MachineDesc& machine, int iters) {
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 10);
    auto history = [&](bench::TraceMode mode, bool fused) {
        rt::Runtime runtime(machine,
                            rt::RuntimeOptions{.trace_fast_path =
                                                   mode == bench::TraceMode::Fast});
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        const auto b = stencil::random_rhs(n, 17);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        core::PlannerOptions popts;
        popts.trace_solver_loops = mode != bench::TraceMode::None;
        popts.fused_kernels = fused;
        core::Planner<double> planner(runtime, popts);
        const Color pieces = static_cast<Color>(machine.total_gpus());
        planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner.add_rhs_vector(br, bf, Partition::equal(D, pieces));
        planner.add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
        const auto cg_owner = core::make_solver<double>("cg", planner);
        core::Solver<double>& cg = *cg_owner;
        std::vector<double> res;
        res.reserve(static_cast<std::size_t>(iters));
        for (int i = 0; i < iters; ++i) {
            cg.step();
            res.push_back(cg.get_convergence_measure().value);
        }
        return res;
    };
    const std::vector<double> baseline = history(bench::TraceMode::None, false);
    const std::vector<double> traced = history(bench::TraceMode::Fast, true);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (baseline[i] != traced[i]) {
            std::cout << "MISMATCH at iteration " << i << ": untraced/unfused "
                      << baseline[i] << " vs fast/fused " << traced[i] << "\n";
            return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const bool smoke = args.get_flag("smoke");
    const int nodes = static_cast<int>(args.get_int("nodes", smoke ? 1 : 16));
    const int minlog = static_cast<int>(args.get_int("minlog", smoke ? 10 : 16));
    const int maxlog = static_cast<int>(args.get_int("maxlog", smoke ? 12 : 28));
    const int timed = static_cast<int>(args.get_int("it", smoke ? 2 : 40));
    const std::string solver = args.get_string("solver", "cg");
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);

    // Validation mode pins traced launches to the full-analysis path, so the
    // fast-path-skipped-analysis assertion below cannot hold.
    if (const char* e = std::getenv("KDR_VALIDATE");
        e != nullptr && *e != '\0' && std::string_view(e) != "0") {
        std::cout << "SKIP: KDR_VALIDATE disables the trace fast path this "
                     "ablation measures\n";
        return 0;
    }

    std::cout << "=== Ablation: dynamic tracing (" << solver << ", 5pt-2D, "
              << machine.total_gpus() << " GPUs) ===\n"
              << "dynamic analysis: " << machine.task_launch_overhead * 1e6
              << " us/task; traced replay: " << machine.traced_launch_overhead * 1e6
              << " us/task\n\n";

    const bench::TraceMode modes[] = {bench::TraceMode::None, bench::TraceMode::Verify,
                                      bench::TraceMode::Fast};
    Table table({"unknowns", "dynamic us/it", "verify us/it", "fast us/it",
                 "fast+fused us/it", "speedup", "stall dyn->fast us/it"});
    for (int lg = minlog; lg <= maxlog; lg += 2) {
        const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
        ModeResult unfused[3];
        for (int m = 0; m < 3; ++m)
            unfused[m] = run_mode(spec, machine, solver, timed, modes[m], false);
        const ModeResult fast_fused =
            run_mode(spec, machine, solver, timed, bench::TraceMode::Fast, true);
        table.add_row({Table::eng(static_cast<double>(spec.unknowns()), 0),
                       bench::us(unfused[0].per_iter), bench::us(unfused[1].per_iter),
                       bench::us(unfused[2].per_iter), bench::us(fast_fused.per_iter),
                       Table::num(unfused[0].per_iter / fast_fused.per_iter, 3) + "x",
                       bench::us(unfused[0].stall) + " -> " + bench::us(unfused[2].stall)});
        if (unfused[2].skipped <= 0.0) {
            std::cout << "ERROR: fast-path replay skipped no dependence analysis at 2^"
                      << lg << "\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nshape: the fast path wins where analysis is the per-iteration floor\n"
                 "(small problems; its stall column collapses to ~0) and is neutral once\n"
                 "compute hides the pipeline (large ones). Fused kernels shave the extra\n"
                 "launch per update+reduction pair on top.\n\n";

    const bool identical = check_convergence_identity(machine, smoke ? 8 : 25);
    std::cout << "functional CG convergence history, fast+fused vs untraced+unfused: "
              << (identical ? "bitwise identical" : "DIVERGED") << "\n";
    return identical ? 0 : 1;
}
