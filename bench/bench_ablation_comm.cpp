/// Ablation: coalesced halo-exchange plans with eager comm/compute overlap
/// (paper §4's P1 claim, made mechanical). Four configurations cross the two
/// ingredients the exchange-plan layer provides:
///
///  * per-piece vs coalesced — without a plan every consumer task fetches
///    each overlapping home piece separately; a plan folds all elements a
///    (src,dst) node pair exchanges into one message, paying the NIC
///    per-message overhead once instead of once per piece;
///  * lazy vs eager — lazy plans issue messages when the consumer launches;
///    eager plans push each message the moment its producing write commits,
///    so the wire time runs concurrently with whatever independent work the
///    schedule has (`transfer_overlap_seconds` accounts the hidden span).
///
/// The systems use a *chunked-cyclic* canonical partition (each piece is a
/// round-robin union of chunks about half the stencil reach wide). That is
/// the paper's P3 point — the distribution strategy is one line, nothing
/// else changes — and it is exactly the regime exchange plans exist for:
/// cyclic decompositions balance boundary load but fragment each node
/// pair's halo into many small runs crossing many home pieces, so the
/// per-piece path pays the NIC per-message overhead dozens of times per
/// neighbor while a plan pays it once. (Under purely contiguous block
/// partitions each node pair already exchanges a single run and coalescing
/// is a no-op by construction.)
///
/// Expected shape: coalescing wins everywhere remote halos exist (the
/// message-count column collapses from per-piece to per-node-pair); eager
/// adds on top where the schedule has slack between producer and consumer.
/// A functional CG run asserts the whole grid leaves convergence histories
/// bitwise unchanged — plans move bytes earlier, never elsewhere.
///
/// Usage: bench_ablation_comm [-nodes 16] [-minlog 16] [-maxlog 24]
///                            [-it 40] [-solver cg] [-eager_threshold -1]
///                            [-smoke]
/// Every flag also reads a KDR_* environment override (see -help).
/// -smoke: 2 nodes, tiny sizes, 2 timed iterations — the CI gate still
/// checks message-count reduction, timing, and bitwise identity.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sparse/csr.hpp"
#include "support/cli.hpp"
#include "support/options.hpp"

namespace {

using namespace kdr;

struct CommConfig {
    const char* name;
    bool plan;
    bool coalesce;
    bool eager;
};

// The ablation grid: {per-piece, coalesced} x {lazy, eager}. "Per-piece +
// lazy" is the planless baseline; "per-piece + eager" pushes unmerged
// messages at commit time.
constexpr CommConfig kConfigs[] = {
    {"per-piece+lazy", false, false, false},
    {"per-piece+eager", true, false, true},
    {"coalesced+lazy", true, true, false},
    {"coalesced+eager", true, true, true},
};

struct ModeResult {
    double per_iter = 0.0;  ///< virtual seconds per timed iteration
    double messages = 0.0;  ///< inter-node messages per timed iteration
    double overlap = 0.0;   ///< transfer seconds hidden behind compute, per iteration
};

/// Reach of the stencil in linearized indices: how far a row's furthest
/// neighbor sits from the row itself.
gidx stencil_reach(const stencil::Spec& spec) {
    switch (spec.kind) {
        case stencil::Kind::D1P3: return 1;
        case stencil::Kind::D2P5: return spec.nx;
        case stencil::Kind::D3P7: return spec.nx * spec.ny;
        case stencil::Kind::D3P27: return spec.nx * spec.ny + spec.nx + 1;
    }
    return spec.nx;
}

/// Chunked-cyclic partition: chunks of `chunk` indices dealt round-robin to
/// `pieces` pieces. Each piece is a union of scattered runs — the paper's P4
/// non-contiguous pieces, and the decomposition that fragments halos.
Partition cyclic_partition(const IndexSpace& space, gidx n, Color pieces, gidx chunk) {
    std::vector<IntervalSet> ps(static_cast<std::size_t>(pieces));
    Color next = 0;
    for (gidx lo = 0; lo < n; lo += chunk) {
        const std::size_t p = static_cast<std::size_t>(next);
        ps[p] = ps[p].set_union(IntervalSet(lo, std::min(n, lo + chunk)));
        next = (next + 1) % pieces;
    }
    return Partition(space, std::move(ps));
}

/// A timing-mode stencil system over the chunked-cyclic partition. Mirrors
/// bench::make_legion_stencil, but builds the operator plan analytically:
/// each piece's domain needs are its rows dilated by the stencil reach.
bench::LegionStencilSystem make_cyclic_stencil(const stencil::Spec& spec,
                                               const sim::MachineDesc& machine,
                                               Color pieces,
                                               const core::PlannerOptions& popts_in) {
    bench::LegionStencilSystem sys;
    core::PlannerOptions popts = popts_in;
    popts.trace_solver_loops = true;
    sys.runtime = std::make_unique<rt::Runtime>(
        machine, rt::RuntimeOptions{.materialize = false, .trace_fast_path = true});
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const rt::RegionId xr = sys.runtime->create_region(D, "x");
    const rt::RegionId br = sys.runtime->create_region(R, "b");
    const rt::FieldId xf = sys.runtime->add_field<double>(xr, "v");
    const rt::FieldId bf = sys.runtime->add_field<double>(br, "v");

    const gidx reach = stencil_reach(spec);
    const gidx chunk = std::max<gidx>(1, reach / 2);
    const Partition cols = cyclic_partition(D, n, pieces, chunk);
    const Partition rows = cyclic_partition(R, n, pieces, chunk);
    sys.planner = std::make_unique<core::Planner<double>>(*sys.runtime, popts);
    sys.planner->add_sol_vector(xr, xf, cols);
    sys.planner->add_rhs_vector(br, bf, rows);

    // Halo of a piece: every run of rows dilated by the stencil reach.
    std::vector<IntervalSet> halos;
    std::vector<gidx> nnz;
    halos.reserve(static_cast<std::size_t>(pieces));
    nnz.reserve(static_cast<std::size_t>(pieces));
    const gidx points = spec.kind == stencil::Kind::D2P5   ? 5
                        : spec.kind == stencil::Kind::D3P7 ? 7
                                                           : 27;
    for (Color c = 0; c < pieces; ++c) {
        IntervalSet h;
        rows.piece(c).for_each_interval([&](const Interval& iv) {
            h = h.set_union(IntervalSet(std::max<gidx>(0, iv.lo - reach),
                                        std::min(n, iv.hi + reach)));
        });
        halos.push_back(std::move(h));
        nnz.push_back(rows.piece(c).volume() * points);
    }

    const IndexSpace K = IndexSpace::create(spec.total_nnz(), "K");
    core::OperatorPlan plan;
    plan.kernel_pieces = Partition::equal(K, pieces);
    plan.domain_needs = Partition(D, std::move(halos));
    plan.row_pieces = rows;
    plan.nnz = std::move(nnz);
    plan.symmetric = true;
    sys.planner->add_operator(nullptr, 0, 0, std::move(plan));
    return sys;
}

ModeResult run_mode(const stencil::Spec& spec, const sim::MachineDesc& machine,
                    const std::string& solver_name, int timed, const CommConfig& cfg) {
    core::PlannerOptions popts;
    popts.comm_plan = cfg.plan;
    popts.comm_coalesce = cfg.coalesce;
    popts.comm_eager = cfg.eager;
    bench::LegionStencilSystem sys = make_cyclic_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), popts);
    auto solver = bench::make_solver(solver_name, *sys.planner);
    const int period = bench::trace_period(solver_name);
    for (int i = 0; i < std::max(10, 2 * std::max(period, 3) + 1); ++i) solver->step();
    const obs::Registry& m = sys.runtime->metrics();
    const auto msgs0 = static_cast<double>(sys.runtime->transfer_count());
    const double ovl0 = m.counter_value("transfer_overlap_seconds");
    const double t0 = sys.runtime->current_time();
    for (int i = 0; i < timed; ++i) solver->step();
    ModeResult r;
    r.per_iter = (sys.runtime->current_time() - t0) / timed;
    r.messages = (static_cast<double>(sys.runtime->transfer_count()) - msgs0) / timed;
    r.overlap = (m.counter_value("transfer_overlap_seconds") - ovl0) / timed;
    return r;
}

/// Functional CG on a small Poisson system: coalesced+eager exchange plans
/// against no plans at all — the convergence history must match bitwise,
/// because plans only reschedule bytes on the simulated network.
bool check_convergence_identity(const sim::MachineDesc& machine, int iters) {
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 10);
    auto history = [&](bool plan) {
        rt::Runtime runtime(machine);
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        const auto b = stencil::random_rhs(n, 17);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        core::PlannerOptions popts;
        popts.comm_plan = plan;
        popts.comm_coalesce = plan;
        popts.comm_eager = plan;
        core::Planner<double> planner(runtime, popts);
        const Color pieces = static_cast<Color>(machine.total_gpus());
        planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner.add_rhs_vector(br, bf, Partition::equal(D, pieces));
        planner.add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
        const auto cg_owner = core::make_solver<double>("cg", planner);
        core::Solver<double>& cg = *cg_owner;
        std::vector<double> res;
        res.reserve(static_cast<std::size_t>(iters));
        for (int i = 0; i < iters; ++i) {
            cg.step();
            res.push_back(cg.get_convergence_measure().value);
        }
        return res;
    };
    const std::vector<double> off = history(false);
    const std::vector<double> on = history(true);
    for (std::size_t i = 0; i < off.size(); ++i) {
        if (off[i] != on[i]) {
            std::cout << "MISMATCH at iteration " << i << ": no-plan " << off[i]
                      << " vs coalesced+eager " << on[i] << "\n";
            return false;
        }
    }
    return true;
}

struct StencilCase {
    const char* name;
    stencil::Kind kind;
};

} // namespace

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    bool smoke = false;
    bool help = false;
    std::int64_t nodes = 0; // 0 = pick by mode below
    std::int64_t minlog = 0;
    std::int64_t maxlog = 0;
    std::int64_t timed = 0;
    std::string solver = "cg";
    double eager_threshold = -1.0;
    support::OptionSet opts;
    opts.add_flag("smoke", smoke, "tiny CI-friendly sizes, 2 nodes, 2 timed iterations");
    opts.add_flag("help", help, "print this help");
    opts.add_int("nodes", nodes, "simulated node count (0 = 16, or 2 under -smoke)");
    opts.add_int("minlog", minlog, "log2 of the smallest unknown count (0 = mode default)");
    opts.add_int("maxlog", maxlog, "log2 of the largest unknown count (0 = mode default)");
    opts.add_int("it", timed, "timed iterations per configuration (0 = mode default)");
    opts.add_string("solver", solver, "solver to ablate (cg/bicg/bicgstab/gmres/minres)");
    opts.add_double("eager_threshold", eager_threshold,
                    "NIC eager/rendezvous threshold in bytes (negative = machine default)");
    opts.parse(args);
    if (help) {
        std::cout << "bench_ablation_comm options:\n" << opts.help();
        return 0;
    }
    if (nodes == 0) nodes = smoke ? 2 : 16;
    if (minlog == 0) minlog = smoke ? 10 : 16;
    if (maxlog == 0) maxlog = smoke ? 12 : 24;
    if (timed == 0) timed = smoke ? 2 : 40;

    sim::MachineDesc machine = sim::MachineDesc::lassen(static_cast<int>(nodes));
    if (eager_threshold >= 0.0) machine.nic_eager_threshold = eager_threshold;

    std::cout << "=== Ablation: exchange plans (" << solver << ", " << nodes << " nodes, "
              << machine.total_gpus() << " GPUs) ===\n"
              << "NIC: " << machine.nic_message_overhead * 1e6 << " us/message, "
              << machine.nic_latency * 1e6 << " us latency, rendezvous above "
              << machine.nic_eager_threshold << " B\n\n";

    const StencilCase stencils[] = {{"5pt-2D", stencil::Kind::D2P5},
                                    {"7pt-3D", stencil::Kind::D3P7},
                                    {"27pt-3D", stencil::Kind::D3P27}};
    bool ok = true;
    for (const StencilCase& st : stencils) {
        Table table({"unknowns", "config", "us/it", "msgs/it", "overlap us/it", "speedup"});
        for (std::int64_t lg = minlog; lg <= maxlog; lg += 2) {
            const stencil::Spec spec = stencil::Spec::cube(st.kind, gidx{1} << lg);
            ModeResult res[4];
            for (int c = 0; c < 4; ++c)
                res[c] = run_mode(spec, machine, solver, static_cast<int>(timed),
                                  kConfigs[c]);
            for (int c = 0; c < 4; ++c) {
                table.add_row({c == 0 ? Table::eng(static_cast<double>(spec.unknowns()), 0)
                                      : "",
                               kConfigs[c].name, bench::us(res[c].per_iter),
                               Table::num(res[c].messages, 1), bench::us(res[c].overlap),
                               Table::num(res[0].per_iter / res[c].per_iter, 3) + "x"});
            }
            const bool largest = lg + 2 > maxlog;
            if (largest && res[3].per_iter >= res[0].per_iter) {
                std::cout << "ERROR: coalesced+eager (" << bench::us(res[3].per_iter)
                          << " us/it) does not beat per-piece+lazy ("
                          << bench::us(res[0].per_iter) << " us/it) on " << st.name
                          << " at 2^" << lg << "\n";
                ok = false;
            }
            if (largest && res[3].messages >= res[0].messages) {
                std::cout << "ERROR: coalescing did not reduce message count on "
                          << st.name << " at 2^" << lg << " (" << res[3].messages
                          << " vs " << res[0].messages << " msgs/it)\n";
                ok = false;
            }
        }
        std::cout << "--- " << st.name << " ---\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "shape: coalescing collapses msgs/it from per-piece to per-node-pair,\n"
                 "saving the NIC per-message overhead; eager pushes run the wire time\n"
                 "concurrently with independent kernels (the overlap column).\n\n";

    const bool identical = check_convergence_identity(machine, smoke ? 8 : 25);
    std::cout << "functional CG convergence history, coalesced+eager vs no plans: "
              << (identical ? "bitwise identical" : "DIVERGED") << "\n";
    return ok && identical ? 0 : 1;
}
