#pragma once

/// \file harness.hpp
/// Shared machinery of the paper-reproduction benchmark binaries: building
/// timing-mode LegionSolvers stencil systems (the Fig 8/9 configurations),
/// solver factories, and the warmup + timed-iteration measurement loop.
/// Solvers trace their own iteration loops (GMRES: per restart cycle); the
/// harness selects the trace mode when building the system (the Fig 8
/// experiments run with tracing enabled; §6.3 notes only the load-balancing
/// experiment disables it).
///
/// All times reported by these harnesses are *virtual* seconds on the
/// simulated Lassen-class cluster (see DESIGN.md): the host machine executes
/// the schedule, the model supplies the clock.

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"
#include "support/table.hpp"

namespace kdr::bench {

/// A timing-mode (phantom-data) stencil system on the task runtime.
struct LegionStencilSystem {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<core::Planner<double>> planner;
};

/// How the system's solvers interact with the runtime tracer:
///   None   — untraced (every launch pays dynamic analysis at full overhead),
///   Verify — traced, but replay still runs dependence analysis per launch
///            (the pre-fast-path behavior, kept as an ablation point),
///   Fast   — traced with the captured-schedule replay that skips analysis.
enum class TraceMode { None, Verify, Fast };

/// Storage arm of a timing-mode stencil system: which SpMV byte profile the
/// operator plan charges per piece. All arms share the same partitioning and
/// the same flop count; only the modeled byte streams (and, for SELL-C-σ,
/// slice padding) differ:
///   Csr     — 16 B matrix + 8 B x per entry, 24 B per row (the default),
///   Sell    — padded entries (rows × points), 16 B matrix + 8 B x per
///             padded entry, 16 B per row (no rowptr stream),
///   MatFree — zero per-entry bytes, 24 B per row (x + y streams only; the
///             "No 3D Matrices" stencil roofline).
enum class OperatorArm { Csr, Sell, MatFree };

[[nodiscard]] inline const char* arm_name(OperatorArm a) {
    switch (a) {
        case OperatorArm::Csr: return "csr";
        case OperatorArm::Sell: return "sell";
        case OperatorArm::MatFree: return "matfree";
    }
    KDR_UNREACHABLE("bad operator arm");
}

/// Build the Fig 8 configuration: CSR-format stencil matrix, row-based
/// partition into `pieces` (the paper's -vp, 4 × node count), phantom data.
/// This overload takes the full PlannerOptions (comm-plan ablations flip
/// those knobs); trace_solver_loops is still derived from `trace`.
inline LegionStencilSystem make_legion_stencil(const stencil::Spec& spec,
                                               const sim::MachineDesc& machine,
                                               Color pieces, TraceMode trace,
                                               core::PlannerOptions popts,
                                               bool profile = false,
                                               OperatorArm arm = OperatorArm::Csr) {
    LegionStencilSystem sys;
    sys.runtime = std::make_unique<rt::Runtime>(
        machine, rt::RuntimeOptions{.materialize = false,
                                    .profile = profile,
                                    .trace_fast_path = trace == TraceMode::Fast});
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const rt::RegionId xr = sys.runtime->create_region(D, "x");
    const rt::RegionId br = sys.runtime->create_region(R, "b");
    const rt::FieldId xf = sys.runtime->add_field<double>(xr, "v");
    const rt::FieldId bf = sys.runtime->add_field<double>(br, "v");

    const stencil::CoPartition cp = stencil::co_partition(spec, D, R, pieces);
    popts.trace_solver_loops = trace != TraceMode::None;
    sys.planner = std::make_unique<core::Planner<double>>(*sys.runtime, popts);
    sys.planner->add_sol_vector(xr, xf, Partition::equal(D, pieces));
    sys.planner->add_rhs_vector(br, bf, cp.rows);

    // SELL-C-σ stores slice-padded entries: stencil rows are near-uniform,
    // so padding rounds every row up to the full stencil width.
    std::vector<gidx> nnz = cp.nnz;
    if (arm == OperatorArm::Sell) {
        for (Color c = 0; c < pieces; ++c)
            nnz[static_cast<std::size_t>(c)] =
                cp.rows.piece(c).volume() * static_cast<gidx>(spec.points());
    }
    gidx total_k = 0;
    for (const gidx v : nnz) total_k += v;

    const IndexSpace K = IndexSpace::create(total_k, "K");
    std::vector<IntervalSet> kpieces;
    gidx cursor = 0;
    for (Color c = 0; c < pieces; ++c) {
        const gidx take = nnz[static_cast<std::size_t>(c)];
        kpieces.emplace_back(cursor, cursor + take);
        cursor += take;
    }
    core::OperatorPlan plan;
    plan.kernel_pieces = Partition(K, std::move(kpieces));
    plan.domain_needs = cp.halo;
    plan.row_pieces = cp.rows;
    plan.nnz = std::move(nnz);
    switch (arm) {
        case OperatorArm::Csr: break; // plan defaults are the CSR profile
        case OperatorArm::Sell:
            plan.bytes_per_row = 16.0; // no rowptr stream, y read/write only
            break;
        case OperatorArm::MatFree: {
            const SpmvCostModel cm =
                stencil::MatrixFreeStencilOperator<double>(
                    spec, IndexSpace::create(n), IndexSpace::create(n),
                    stencil::laplacian_coeffs(spec))
                    .spmv_cost_model();
            plan.bytes_per_entry = cm.matrix_bytes_per_entry;
            plan.gather_bytes_per_entry = cm.gather_bytes_per_entry;
            plan.bytes_per_row = cm.bytes_per_row;
            break;
        }
    }
    plan.symmetric = true; // Laplacian stencils: adjoint solvers reuse the plan
    sys.planner->add_operator(nullptr, 0, 0, std::move(plan));
    return sys;
}

/// Convenience overload keeping the historical (trace, fused) signature.
inline LegionStencilSystem make_legion_stencil(const stencil::Spec& spec,
                                               const sim::MachineDesc& machine,
                                               Color pieces,
                                               TraceMode trace = TraceMode::Fast,
                                               bool fused = true) {
    core::PlannerOptions popts;
    popts.fused_kernels = fused;
    return make_legion_stencil(spec, machine, pieces, trace, popts);
}

/// Solver factory shared by the harnesses: any core registry spec works
/// ("cg", "gmres/30", "ca_cg/8/newton", ...). GMRES defaults to the static
/// GMRES(10) restart schedule of the paper's comparison.
inline std::unique_ptr<core::Solver<double>>
make_solver(const std::string& name, core::Planner<double>& planner,
            const core::SolverParams& params = {}) {
    return core::make_solver<double>(name, planner, params);
}

/// Number of *steps* one trace instance spans for a solver spec (GMRES and
/// CA-GMRES trace whole restart cycles; everything else traces single
/// steps — an s-step block is one step). Warmups must cover one recording
/// instance plus one capture instance before replay is at full speed.
inline int trace_period(const std::string& solver,
                        const core::SolverParams& params = {}) {
    const std::vector<std::string> spec = core::detail::split_spec(solver);
    if (spec.empty()) return 1;
    if (spec[0] == "gmres") {
        return spec.size() > 1 ? core::detail::parse_int_arg(spec[1], "gmres restart")
                               : params.gmres_restart;
    }
    if (spec[0] == "ca_gmres") {
        const int m = spec.size() > 1
                          ? core::detail::parse_int_arg(spec[1], "ca_gmres restart")
                          : params.gmres_restart;
        const int s = std::min(
            spec.size() > 2 ? core::detail::parse_int_arg(spec[2], "ca_gmres block size")
                            : params.ca_s,
            m);
        return (m + s - 1) / s; // steps per restart cycle
    }
    return 1;
}

/// Warmup then measure: returns average virtual seconds per *iteration*
/// (an s-step solver advances iterations_per_step() of them per step, so
/// the denominator scales — this is what makes classic-vs-CA time-per-
/// iteration comparisons apples-to-apples).
/// Solvers trace their own loops, so `warmup` only needs to be deep enough
/// for the record + capture instances to complete — at least 2·period + 1
/// steps (MINRES rotates three traces; 2·3 + 1 covers it too).
inline double measure_per_iteration(rt::Runtime& runtime, core::Solver<double>& solver,
                                    int warmup, int timed, int period = 1) {
    warmup = std::max(warmup, 2 * std::max(period, 3) + 1);
    for (int i = 0; i < warmup; ++i) solver.step();
    const double t0 = runtime.current_time();
    for (int i = 0; i < timed; ++i) solver.step();
    return (runtime.current_time() - t0) /
           (static_cast<double>(timed) * solver.iterations_per_step());
}

/// Pretty microseconds.
inline std::string us(double seconds) { return Table::num(seconds * 1e6, 2); }

} // namespace kdr::bench
