/// Figure 8 reproduction: execution time per iteration as a function of
/// problem size for {3pt-1D, 5pt-2D, 7pt-3D, 27pt-3D} × {CG, BiCGStab,
/// GMRES}, comparing LegionSolvers (task runtime) against the PETSc- and
/// Trilinos-like baselines on 16 simulated Lassen nodes (64 GPUs), CSR
/// format, identical row-based partitions. PETSc is excluded from GMRES
/// (dynamic restart policy — §6.1 footnote 2).
///
/// The paper sweeps 2^24..2^32 unknowns; the default sweep here is scaled to
/// 2^18..2^30 so the whole grid simulates in about a minute (override with
/// -minlog/-maxlog). Each measurement is 20 warmup + `it` timed iterations;
/// the simulation is deterministic, so the paper's min-of-3 reduces to one
/// run (see EXPERIMENTS.md).
///
/// Usage: bench_fig8_stencil [-nodes 16] [-minlog 18] [-maxlog 28]
///                           [-steplog 2] [-it 50] [-report]
///
/// -report additionally prints a structured solve report (per-task-kind
/// virtual time, node utilization, transfer matrix, phase totals) for the
/// largest size of every kind/solver cell.
///
/// Each LegionSolvers cell also runs a SELL-C-σ arm (padded entries, no
/// rowptr stream) and a matrix-free arm (zero matrix bytes); a final summary
/// reports per-iteration and SpMV-phase-only matrix-free speedups at the
/// largest size.

#include <iostream>
#include <map>

#include "baselines/ksp.hpp"
#include "harness.hpp"
#include "obs/report.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace {

using namespace kdr;

// The paper's Fig 8 runs LegionSolvers with dynamic dependence analysis (the
// artifact's jsrun line enables no tracing); bench_ablation_tracing measures
// what tracing would buy. -trace turns on the fast-path replay.
double run_legion(const stencil::Spec& spec, const sim::MachineDesc& machine,
                  const std::string& solver_name, int timed, bool trace,
                  obs::SolveReport* report_out = nullptr,
                  bench::OperatorArm arm = bench::OperatorArm::Csr) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()),
        trace ? bench::TraceMode::Fast : bench::TraceMode::None, core::PlannerOptions{},
        /*profile=*/false, arm);
    if (report_out != nullptr) sys.runtime->set_profiling(true);
    auto solver = bench::make_solver(solver_name, *sys.planner);
    const double per_it = bench::measure_per_iteration(*sys.runtime, *solver, 20, timed,
                                                       bench::trace_period(solver_name));
    if (report_out != nullptr) *report_out = sys.runtime->build_solve_report();
    return per_it;
}

// SpMV-phase-only virtual time per multiply: isolates the term the
// matrix-free arm collapses (solver vector kernels are format-independent,
// so per-iteration ratios are Amdahl-diluted — the 1D 3-point stencil most
// of all).
double run_legion_spmv(const stencil::Spec& spec, const sim::MachineDesc& machine, int timed,
                       bench::OperatorArm arm) {
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::None,
        core::PlannerOptions{}, /*profile=*/false, arm);
    using P = core::Planner<double>;
    for (int i = 0; i < 5; ++i) sys.planner->matmul(P::RHS, P::SOL);
    const double t0 = sys.runtime->current_time();
    for (int i = 0; i < timed; ++i) sys.planner->matmul(P::RHS, P::SOL);
    return (sys.runtime->current_time() - t0) / timed;
}

double run_baseline(const stencil::Spec& spec, const sim::MachineDesc& machine,
                    baselines::Profile profile, const std::string& solver_name, int timed) {
    sim::SimCluster cluster(machine);
    bsp::BspWorld world(cluster, sim::ProcKind::GPU);
    baselines::StencilBaseline engine(world, spec, std::move(profile), /*functional=*/false);
    baselines::Method method = baselines::Method::CG;
    if (solver_name == "bicgstab") method = baselines::Method::BiCGStab;
    if (solver_name == "gmres") method = baselines::Method::GmresStatic;
    baselines::KspSolver solver(engine, method, 10);
    for (int i = 0; i < 20; ++i) solver.step();
    const double t0 = engine.now();
    for (int i = 0; i < timed; ++i) solver.step();
    return (engine.now() - t0) / timed;
}

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 16));
    const int minlog = static_cast<int>(args.get_int("minlog", 18));
    const int maxlog = static_cast<int>(args.get_int("maxlog", 30));
    const int steplog = static_cast<int>(args.get_int("steplog", 2));
    const int timed = static_cast<int>(args.get_int("it", 50));
    const bool trace = args.get_flag("trace");
    const bool want_report = args.get_flag("report");

    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    std::cout << "=== Figure 8: time/iteration vs problem size ===\n"
              << "machine: " << nodes << " nodes x " << machine.gpus_per_node << " GPUs ("
              << machine.total_gpus() << " GPUs), CSR, row partition, vp="
              << machine.total_gpus() << "\n"
              << "sizes: 2^" << minlog << "..2^" << maxlog << " step 2^" << steplog
              << ", 20 warmup + " << timed << " timed iterations (virtual time)\n\n";

    const std::vector<stencil::Kind> kinds = {stencil::Kind::D1P3, stencil::Kind::D2P5,
                                              stencil::Kind::D3P7, stencil::Kind::D3P27};
    const std::vector<std::string> solvers = {"cg", "bicgstab", "gmres"};

    // speedups[baseline] collects legion-vs-baseline time ratios on the 3
    // largest sizes of each subplot (the paper's geomean figure).
    std::map<std::string, std::vector<double>> speedups;

    // Matrix-free acceptance summary: per-iteration CSR vs matfree at the
    // largest size of every kind/solver cell.
    struct MfCell {
        std::string kind;
        std::string solver;
        double csr;
        double matfree;
    };
    std::vector<MfCell> mf_summary;

    for (const stencil::Kind kind : kinds) {
        for (const std::string& solver : solvers) {
            const bool with_petsc = solver != "gmres";
            std::cout << "--- " << stencil::kind_name(kind) << " / " << solver << " ---\n";
            kdr::Table table(with_petsc
                                 ? std::vector<std::string>{"unknowns", "legion us/it",
                                                            "sell us/it", "matfree us/it",
                                                            "mf vs csr", "petsc us/it",
                                                            "trilinos us/it", "vs petsc",
                                                            "vs trilinos"}
                                 : std::vector<std::string>{"unknowns", "legion us/it",
                                                            "sell us/it", "matfree us/it",
                                                            "mf vs csr", "trilinos us/it",
                                                            "vs trilinos"});
            std::vector<double> legion_hist, petsc_hist, trilinos_hist, matfree_hist;
            kdr::obs::SolveReport cell_report;
            for (int lg = minlog; lg <= maxlog; lg += steplog) {
                const stencil::Spec spec = stencil::Spec::cube(kind, gidx{1} << lg);
                const bool largest = lg + steplog > maxlog;
                const double legion =
                    run_legion(spec, machine, solver, timed, trace,
                               want_report && largest ? &cell_report : nullptr);
                const double sell = run_legion(spec, machine, solver, timed, trace, nullptr,
                                               bench::OperatorArm::Sell);
                const double matfree = run_legion(spec, machine, solver, timed, trace,
                                                  nullptr, bench::OperatorArm::MatFree);
                const double trilinos =
                    run_baseline(spec, machine, baselines::Profile::trilinos(), solver, timed);
                legion_hist.push_back(legion);
                matfree_hist.push_back(matfree);
                trilinos_hist.push_back(trilinos);
                std::vector<std::string> row = {kdr::Table::eng(static_cast<double>(spec.unknowns()), 0),
                                                kdr::bench::us(legion),
                                                kdr::bench::us(sell),
                                                kdr::bench::us(matfree),
                                                kdr::Table::num(legion / matfree, 3) + "x"};
                if (with_petsc) {
                    const double petsc =
                        run_baseline(spec, machine, baselines::Profile::petsc(), solver, timed);
                    petsc_hist.push_back(petsc);
                    row.push_back(kdr::bench::us(petsc));
                    row.push_back(kdr::bench::us(trilinos));
                    row.push_back(kdr::Table::num(petsc / legion, 3) + "x");
                    row.push_back(kdr::Table::num(trilinos / legion, 3) + "x");
                } else {
                    row.push_back(kdr::bench::us(trilinos));
                    row.push_back(kdr::Table::num(trilinos / legion, 3) + "x");
                }
                table.add_row(std::move(row));
                if (largest) {
                    mf_summary.push_back({stencil::kind_name(kind), solver,
                                          legion, matfree});
                }
            }
            table.print(std::cout);
            std::cout << "\n";
            if (want_report) {
                std::cout << "solve report, largest size:\n";
                cell_report.print(std::cout);
                std::cout << "\n";
            }
            // Three largest sizes feed the headline geomean.
            const std::size_t n = legion_hist.size();
            for (std::size_t i = n >= 3 ? n - 3 : 0; i < n; ++i) {
                speedups["trilinos"].push_back(trilinos_hist[i] / legion_hist[i]);
                if (with_petsc) speedups["petsc"].push_back(petsc_hist[i] / legion_hist[i]);
            }
        }
    }

    std::cout << "=== Headline (paper: 9.6% vs Trilinos, 5.4% vs PETSc on the 3 largest "
                 "sizes) ===\n";
    for (const auto& [name, ratios] : speedups) {
        const double g = kdr::geometric_mean(ratios);
        std::cout << "geomean speedup vs " << name << ": " << kdr::Table::num(g, 4) << "x ("
                  << kdr::Table::num((g - 1.0) * 100.0, 2) << "% time reduction)\n";
    }

    // SpMV-phase-only comparison at the largest size: solver vector kernels
    // are format-independent, so this is the undiluted roofline effect of
    // dropping the matrix byte stream (the 1D 3-point stencil's per-iteration
    // ratio is Amdahl-bounded at ~1.8x because 88 B/elem of vector traffic
    // dominates its 40 B/elem CSR SpMV; see DESIGN.md).
    std::cout << "\n=== Matrix-free arm at largest size (2^" << maxlog << ") ===\n";
    std::map<std::string, double> spmv_ratio;
    {
        kdr::Table stable({"kind", "csr spmv us", "matfree spmv us", "spmv speedup"});
        for (const stencil::Kind kind : kinds) {
            const stencil::Spec spec = stencil::Spec::cube(kind, gidx{1} << maxlog);
            const double csr =
                run_legion_spmv(spec, machine, timed, bench::OperatorArm::Csr);
            const double mf =
                run_legion_spmv(spec, machine, timed, bench::OperatorArm::MatFree);
            spmv_ratio[stencil::kind_name(kind)] = csr / mf;
            stable.add_row({stencil::kind_name(kind), kdr::bench::us(csr),
                            kdr::bench::us(mf), kdr::Table::num(csr / mf, 3) + "x"});
        }
        stable.print(std::cout);
    }
    std::cout << "\n";
    {
        kdr::Table mtable({"kind", "solver", "csr us/it", "matfree us/it", "per-it speedup",
                           "spmv speedup"});
        std::vector<double> mf_ratios;
        for (const MfCell& c : mf_summary) {
            mf_ratios.push_back(c.csr / c.matfree);
            mtable.add_row({c.kind, c.solver, kdr::bench::us(c.csr),
                            kdr::bench::us(c.matfree),
                            kdr::Table::num(c.csr / c.matfree, 3) + "x",
                            kdr::Table::num(spmv_ratio[c.kind], 3) + "x"});
        }
        mtable.print(std::cout);
        if (!mf_ratios.empty()) {
            std::cout << "geomean matrix-free per-iteration speedup vs CSR: "
                      << kdr::Table::num(kdr::geometric_mean(mf_ratios), 4) << "x\n";
        }
    }
    return 0;
}
