/// Kernel microbenchmarks (google-benchmark, real wall time on the host):
/// SpMV across every storage format in the Fig 3 catalog, plus the
/// dependent-partitioning projection operators each format's relations
/// provide. These measure the *functional* kernels the tests and examples
/// run, not the simulated cluster.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "partition/projection.hpp"
#include "sparse/convert.hpp"
#include "sparse/described_formats.hpp"
#include "sparse/sell.hpp"
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"

namespace {

using namespace kdr;

constexpr gidx kSide = 256; // 64k unknowns, 5pt stencil

const CsrMatrix<double>& base_csr() {
    static const auto matrix = [] {
        stencil::Spec spec;
        spec.kind = stencil::Kind::D2P5;
        spec.nx = kSide;
        spec.ny = kSide;
        const IndexSpace D = IndexSpace::create(spec.unknowns());
        const IndexSpace R = IndexSpace::create(spec.unknowns());
        return std::make_unique<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R));
    }();
    return *matrix;
}

const std::vector<double>& input_vector() {
    static const std::vector<double> x = stencil::random_rhs(kSide * kSide, 42);
    return x;
}

template <typename Op>
void run_spmv(benchmark::State& state, const Op& op) {
    const auto& x = input_vector();
    std::vector<double> y(static_cast<std::size_t>(op.range().size()), 0.0);
    for (auto _ : state) {
        op.multiply_add(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            op.kernel().size());
}

void BM_SpMV_Csr(benchmark::State& state) { run_spmv(state, base_csr()); }
void BM_SpMV_Coo(benchmark::State& state) {
    static const auto m = to_coo(base_csr());
    run_spmv(state, m);
}
void BM_SpMV_Csc(benchmark::State& state) {
    static const auto m = to_csc(base_csr());
    run_spmv(state, m);
}
void BM_SpMV_Ell(benchmark::State& state) {
    static const auto m = to_ell(base_csr());
    run_spmv(state, m);
}
void BM_SpMV_EllT(benchmark::State& state) {
    static const auto m = to_ellt(base_csr());
    run_spmv(state, m);
}
void BM_SpMV_Dia(benchmark::State& state) {
    static const auto m = to_dia(base_csr());
    run_spmv(state, m);
}
void BM_SpMV_Bcsr(benchmark::State& state) {
    static const auto m = to_bcsr(base_csr(), 2, 2);
    run_spmv(state, m);
}
void BM_SpMV_Bcsc(benchmark::State& state) {
    static const auto m = to_bcsc(base_csr(), 2, 2);
    run_spmv(state, m);
}

BENCHMARK(BM_SpMV_Csr);
BENCHMARK(BM_SpMV_Coo);
BENCHMARK(BM_SpMV_Csc);
BENCHMARK(BM_SpMV_Ell);
BENCHMARK(BM_SpMV_EllT);
BENCHMARK(BM_SpMV_Dia);
BENCHMARK(BM_SpMV_Bcsr);
BENCHMARK(BM_SpMV_Bcsc);

/// Description-derived formats on the same system: the generic loop nests
/// derived from two-level descriptions (sparse/described.hpp), measured
/// against the hand-written classes above. "coot" (column-major COO) has no
/// legacy class at all — it exists purely as a description. Dense is
/// excluded: a 64k x 64k full grid is a memory benchmark, not an SpMV one.
void BM_SpMV_Described(benchmark::State& state, const char* name) {
    static std::map<std::string, std::shared_ptr<sparse::DescribedFormat<double>>> cache;
    auto& op = cache[name];
    if (op == nullptr) {
        stencil::Spec spec;
        spec.kind = stencil::Kind::D2P5;
        spec.nx = kSide;
        spec.ny = kSide;
        op = sparse::make_described<double>(name, base_csr().domain(), base_csr().range(),
                                            stencil::laplacian_triplets(spec));
    }
    run_spmv(state, *op);
}
BENCHMARK_CAPTURE(BM_SpMV_Described, csr, "csr");
BENCHMARK_CAPTURE(BM_SpMV_Described, csc, "csc");
BENCHMARK_CAPTURE(BM_SpMV_Described, coo, "coo");
BENCHMARK_CAPTURE(BM_SpMV_Described, coot, "coot");
BENCHMARK_CAPTURE(BM_SpMV_Described, ell, "ell");
BENCHMARK_CAPTURE(BM_SpMV_Described, ellt, "ellt");
BENCHMARK_CAPTURE(BM_SpMV_Described, sell, "sell");

/// Matrix-free vs materialized across all four paper stencils (~64k
/// unknowns each): the host-side analogue of the simulated roofline
/// comparison in bench_fig8_stencil. The matrix-free kernel reads P
/// coefficients instead of an entries/cols stream.
void run_stencil_spmv(benchmark::State& state, const stencil::Kind kind,
                      const char* format) {
    const stencil::Spec spec = stencil::Spec::cube(kind, gidx{1} << 16);
    const IndexSpace D = IndexSpace::create(spec.unknowns());
    const IndexSpace R = IndexSpace::create(spec.unknowns());
    const std::vector<double> x = stencil::random_rhs(spec.unknowns(), 42);
    std::vector<double> y(static_cast<std::size_t>(spec.unknowns()), 0.0);
    std::shared_ptr<const LinearOperator<double>> op;
    if (std::string_view(format) == "matfree") {
        op = stencil::make_matrix_free_laplacian(spec, D, R);
    } else if (std::string_view(format) == "sell") {
        op = std::make_shared<SellMatrix<double>>(SellMatrix<double>::from_triplets(
            D, R, /*slice_height=*/32, /*sigma=*/128, stencil::laplacian_triplets(spec)));
    } else {
        op = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R));
    }
    for (auto _ : state) {
        op->multiply_add(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            op->kernel().size());
}
void BM_SpMV_MatFree(benchmark::State& state, stencil::Kind kind) {
    run_stencil_spmv(state, kind, "matfree");
}
void BM_SpMV_StencilCsr(benchmark::State& state, stencil::Kind kind) {
    run_stencil_spmv(state, kind, "csr");
}
void BM_SpMV_StencilSell(benchmark::State& state, stencil::Kind kind) {
    run_stencil_spmv(state, kind, "sell");
}
BENCHMARK_CAPTURE(BM_SpMV_MatFree, 3pt_1d, stencil::Kind::D1P3);
BENCHMARK_CAPTURE(BM_SpMV_MatFree, 5pt_2d, stencil::Kind::D2P5);
BENCHMARK_CAPTURE(BM_SpMV_MatFree, 7pt_3d, stencil::Kind::D3P7);
BENCHMARK_CAPTURE(BM_SpMV_MatFree, 27pt_3d, stencil::Kind::D3P27);
BENCHMARK_CAPTURE(BM_SpMV_StencilCsr, 3pt_1d, stencil::Kind::D1P3);
BENCHMARK_CAPTURE(BM_SpMV_StencilCsr, 5pt_2d, stencil::Kind::D2P5);
BENCHMARK_CAPTURE(BM_SpMV_StencilCsr, 7pt_3d, stencil::Kind::D3P7);
BENCHMARK_CAPTURE(BM_SpMV_StencilCsr, 27pt_3d, stencil::Kind::D3P27);
BENCHMARK_CAPTURE(BM_SpMV_StencilSell, 3pt_1d, stencil::Kind::D1P3);
BENCHMARK_CAPTURE(BM_SpMV_StencilSell, 5pt_2d, stencil::Kind::D2P5);
BENCHMARK_CAPTURE(BM_SpMV_StencilSell, 7pt_3d, stencil::Kind::D3P7);
BENCHMARK_CAPTURE(BM_SpMV_StencilSell, 27pt_3d, stencil::Kind::D3P27);

/// Projection speed: row-partition preimage + column image through the
/// format's own relations (the universal co-partitioning operators of §3.1).
void BM_Projection_CsrCoPartition(benchmark::State& state) {
    const auto& A = base_csr();
    const Partition rows = Partition::equal(A.range(), state.range(0));
    for (auto _ : state) {
        const Partition pk = preimage(rows, *A.row_relation());
        const Partition pd = image(pk, *A.col_relation());
        benchmark::DoNotOptimize(pd.color_count());
    }
}
BENCHMARK(BM_Projection_CsrCoPartition)->Arg(4)->Arg(16)->Arg(64);

void BM_Projection_CooCoPartition(benchmark::State& state) {
    static const auto A = to_coo(base_csr());
    const Partition rows = Partition::equal(A.range(), state.range(0));
    for (auto _ : state) {
        const Partition pk = preimage(rows, *A.row_relation());
        const Partition pd = image(pk, *A.col_relation());
        benchmark::DoNotOptimize(pd.color_count());
    }
}
BENCHMARK(BM_Projection_CooCoPartition)->Arg(4)->Arg(16)->Arg(64);

/// Interval-set algebra (the substrate of dependence analysis).
void BM_IntervalSet_Intersection(benchmark::State& state) {
    std::vector<Interval> a_ivs, b_ivs;
    for (gidx i = 0; i < state.range(0); ++i) {
        a_ivs.push_back({i * 100, i * 100 + 60});
        b_ivs.push_back({i * 100 + 30, i * 100 + 90});
    }
    const IntervalSet a = IntervalSet::from_intervals(std::move(a_ivs));
    const IntervalSet b = IntervalSet::from_intervals(std::move(b_ivs));
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.set_intersection(b).volume());
    }
}
BENCHMARK(BM_IntervalSet_Intersection)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
