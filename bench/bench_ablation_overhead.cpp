/// Ablation: sensitivity to the per-task dynamic-analysis cost — the key
/// calibration constant of the reproduction (DESIGN.md §5). Sweeps the
/// task-launch overhead and reports CG time/iteration at a small, a medium,
/// and a large problem size. The small-size column scales linearly with the
/// overhead (analysis-bound); the large-size column is flat (compute-bound)
/// — which is why the Fig 8 conclusions are robust to the exact value.
///
/// Usage: bench_ablation_overhead [-nodes 16] [-it 40]

#include <iostream>

#include "harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 16));
    const int timed = static_cast<int>(args.get_int("it", 40));

    std::cout << "=== Ablation: per-task analysis cost sweep (CG, 5pt-2D) ===\n\n";
    Table table({"overhead us/task", "2^18 us/it", "2^24 us/it", "2^30 us/it"});
    for (double overhead_us : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
        std::vector<std::string> row = {Table::num(overhead_us, 1)};
        for (int lg : {18, 24, 30}) {
            sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
            machine.task_launch_overhead = overhead_us * 1e-6;
            const stencil::Spec spec =
                stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
            bench::LegionStencilSystem sys = bench::make_legion_stencil(
                spec, machine, static_cast<Color>(machine.total_gpus()),
                bench::TraceMode::None);
            core::CgSolver<double> cg(*sys.planner);
            row.push_back(bench::us(
                bench::measure_per_iteration(*sys.runtime, cg, 10, timed)));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
