/// Ablation: sensitivity to the per-task dynamic-analysis cost — the key
/// calibration constant of the reproduction (DESIGN.md §5). Sweeps the
/// task-launch overhead and reports CG time/iteration at a small, a medium,
/// and a large problem size. The small-size column scales linearly with the
/// overhead (analysis-bound); the large-size column is flat (compute-bound)
/// — which is why the Fig 8 conclusions are robust to the exact value.
///
/// A second axis gates the event profiler's overhead: CG per-iteration
/// virtual time with `RuntimeOptions::profile` on vs off must agree within
/// 5% (recording is observation-only, so the delta should be exactly zero),
/// and a functional small solve must produce a bitwise-identical residual
/// history. The process exits non-zero when either gate fails, so the -smoke
/// mode doubles as a ctest case (`ctest -L obs`).
///
/// Usage: bench_ablation_overhead [-nodes 16] [-it 40] [-smoke]

#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "obs/profile.hpp"
#include "support/cli.hpp"

namespace {

/// CG per-iteration virtual time on the timing-mode stencil system with the
/// profiler on or off.
double cg_us_per_it(const kdr::stencil::Spec& spec, const kdr::sim::MachineDesc& machine,
                    int timed, bool profile) {
    using namespace kdr;
    bench::LegionStencilSystem sys =
        bench::make_legion_stencil(spec, machine, static_cast<Color>(machine.total_gpus()),
                                   bench::TraceMode::Fast, core::PlannerOptions{}, profile);
    const auto cg_owner = core::make_solver<double>("cg", *sys.planner);
    core::Solver<double>& cg = *cg_owner;
    return bench::measure_per_iteration(*sys.runtime, cg, 10, timed);
}

/// Residual history of a small functional CG solve (real numerics, not
/// phantom data) with the profiler on or off.
std::vector<double> functional_history(bool profile, int iters) {
    using namespace kdr;
    rt::RuntimeOptions ropts;
    ropts.profile = profile;
    rt::Runtime runtime(sim::MachineDesc::lassen(2), ropts);

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 32;
    spec.ny = 32;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(n, 20250806);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 4));
    planner.add_operator(
        std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;
    std::vector<double> history;
    history.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters && cg.status() == core::SolveStatus::running; ++i) {
        cg.step();
        history.push_back(cg.get_convergence_measure().value);
    }
    return history;
}

} // namespace

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const bool smoke = args.get_flag("smoke");
    const int nodes = static_cast<int>(args.get_int("nodes", smoke ? 4 : 16));
    const int timed = static_cast<int>(args.get_int("it", smoke ? 10 : 40));

    if (!smoke) {
        std::cout << "=== Ablation: per-task analysis cost sweep (CG, 5pt-2D) ===\n\n";
        Table table({"overhead us/task", "2^18 us/it", "2^24 us/it", "2^30 us/it"});
        for (double overhead_us : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
            std::vector<std::string> row = {Table::num(overhead_us, 1)};
            for (int lg : {18, 24, 30}) {
                sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
                machine.task_launch_overhead = overhead_us * 1e-6;
                const stencil::Spec spec =
                    stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
                bench::LegionStencilSystem sys = bench::make_legion_stencil(
                    spec, machine, static_cast<Color>(machine.total_gpus()),
                    bench::TraceMode::None);
                const auto cg_owner = core::make_solver<double>("cg", *sys.planner);
                core::Solver<double>& cg = *cg_owner;
                row.push_back(bench::us(
                    bench::measure_per_iteration(*sys.runtime, cg, 10, timed)));
            }
            table.add_row(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ------------------------- profiler-overhead gate -------------------------
    std::cout << "=== Ablation: event-profiler overhead (CG, 5pt-2D) ===\n\n";
    bool ok = true;
    Table ptable({"size", "profile off us/it", "profile on us/it", "delta %"});
    for (int lg : smoke ? std::vector<int>{18} : std::vector<int>{18, 24}) {
        const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
        const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{1} << lg);
        const double off = cg_us_per_it(spec, machine, timed, false);
        const double on = cg_us_per_it(spec, machine, timed, true);
        const double delta = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
        ptable.add_row({"2^" + std::to_string(lg), bench::us(off), bench::us(on),
                        Table::num(delta, 3)});
        if (std::abs(delta) >= 5.0) ok = false;
    }
    ptable.print(std::cout);

    const std::vector<double> base = functional_history(false, smoke ? 20 : 40);
    const std::vector<double> prof = functional_history(true, smoke ? 20 : 40);
    bool bitwise = base.size() == prof.size() && !base.empty();
    for (std::size_t i = 0; bitwise && i < base.size(); ++i) {
        bitwise = std::memcmp(&base[i], &prof[i], sizeof(double)) == 0;
    }
    std::cout << "\nvirtual-time delta gate (< 5%): " << (ok ? "PASS" : "FAIL")
              << "\nresidual history bitwise identical with profiling: "
              << (bitwise ? "PASS" : "FAIL") << "\n";
    return ok && bitwise ? 0 : 1;
}
