/// Figure 10 reproduction: CG on a 5-point Laplacian with a stochastic
/// background CPU load, comparing a static task mapping against the
/// thermodynamic dynamic load balancer (paper §6.3).
///
/// Setup (scaled from the paper's 2^16 × 2^16 grid on 32 nodes):
///  * the grid is divided into 64 domain pieces by *anti-diagonal
///    interleaving* (element (r, c) belongs to piece (r + c) mod 64) — a
///    layout only expressible because KDRSolvers pieces are arbitrary index
///    subsets (P3/P4). Under this layout the 64×64 tile cut of the matrix
///    concentrates 4/5 of the SpMV work in the off-diagonal tiles
///    A_{i,i±1}, so tile giveaways move real load;
///  * each node owns two pieces; each tile A_{i,j} may live on the node
///    owning the output piece D_i or the input piece D_j (two potential
///    owners — giveaway targets are unique, no global communication);
///  * every 100th iteration each node's background occupancy is re-drawn
///    uniformly from [0, 39] of its 40 cores; the same seed drives both
///    runs;
///  * the dynamic mapper rebalances every 10th iteration: node i gives away
///    each owned tile with probability min(e^{β(T_i−T₀)} − 1, 1). (The
///    paper prints min(e^{β(T_i−T₀)}, 1), which is identically 1 whenever
///    T_i > T₀; we use the continuous variant ≈ β(T_i−T₀), preserving the
///    rate-controlled adaptation the β parameter is said to provide.)
///
/// Paper result: occasional worse mappings that never persist past 10
/// iterations, and a 66% reduction in total execution time.
///
/// Usage: bench_fig10_loadbalance [-nodes 32] [-nx 4096] [-ny 4096]
///                                [-iters 500] [-beta 0 (auto = 2/T0)]
///                                [-seed 2025]

#include <iostream>
#include <numeric>

#include "core/load_balancer.hpp"
#include "core/solvers.hpp"
#include "harness.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

struct Fig10Run {
    double total_time = 0.0;
    std::vector<double> per_iteration;
    int tiles_moved = 0;
};

Fig10Run run(bool dynamic_balancing, int nodes, gidx nx, gidx ny, int iters, double beta_arg,
             std::uint64_t seed) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    const int pieces = 2 * nodes; // two domain pieces per node (paper)
    rt::Runtime runtime(machine, rt::RuntimeOptions{.materialize = false});
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    runtime.set_mapper(
        std::make_unique<core::TileTableMapper>(table, sim::ProcKind::CPU));

    core::PlannerOptions opts;
    opts.proc_kind = sim::ProcKind::CPU;
    opts.per_operator_task_colors = true;
    core::Planner<double> planner(runtime, opts);

    // Components: piece i owns grid rows ≡ i (mod pieces), renumbered into a
    // dense local space of (nx/pieces) × ny elements.
    KDR_REQUIRE(nx % pieces == 0, "fig10: nx must be divisible by ", pieces);
    const gidx local_elems = (nx / static_cast<gidx>(pieces)) * ny;
    std::vector<core::CompId> sol_ids, rhs_ids;
    for (int i = 0; i < pieces; ++i) {
        const IndexSpace Di = IndexSpace::create(local_elems, "D" + std::to_string(i));
        const rt::RegionId xr = runtime.create_region(Di, "x" + std::to_string(i));
        const rt::RegionId br = runtime.create_region(Di, "b" + std::to_string(i));
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        sol_ids.push_back(planner.add_sol_vector(xr, xf));
        rhs_ids.push_back(planner.add_rhs_vector(br, bf));
    }

    // Tiles. With anti-diagonally interleaved pieces (element (r, c) belongs
    // to piece (r + c) mod pieces), all four stencil neighbors of a point
    // live in the adjacent pieces, so the diagonal tile A_{i,i} holds only
    // the center coefficient (1 nnz/element, immovable — both owners
    // coincide) while each off-diagonal tile A_{i,i±1 mod pieces} holds two
    // couplings per element (movable between the two adjacent owners). This
    // puts 4/5 of the SpMV work in migratable tiles — the layout freedom is
    // exactly what arbitrary-subset pieces (P3/P4) buy.
    std::vector<core::Tile> tiles;
    auto owner_of_comp = [&](int comp) { return comp % nodes; };
    for (int i = 0; i < pieces; ++i) {
        for (int dj : {0, -1, 1}) {
            const int j = (i + dj + pieces) % pieces;
            const gidx nnz = (dj == 0 ? 1 : 2) * local_elems;
            const IndexSpace K = IndexSpace::create(nnz, "K");
            core::OperatorPlan plan;
            plan.kernel_pieces = Partition::single(K);
            plan.domain_needs =
                Partition::single(planner.sol_component(static_cast<std::size_t>(j)).space);
            plan.row_pieces =
                Partition::single(planner.rhs_component(static_cast<std::size_t>(i)).space);
            plan.nnz = {nnz};
            planner.add_operator(nullptr, sol_ids[static_cast<std::size_t>(j)],
                                 rhs_ids[static_cast<std::size_t>(i)], std::move(plan));
            const std::size_t op_index = planner.operator_count() - 1;
            const Color color = planner.matmul_color(op_index, 0);
            const int out_owner = owner_of_comp(i);
            const int in_owner = owner_of_comp(j);
            (*table)[color] = out_owner;
            if (dj != 0 && out_owner != in_owner) {
                tiles.push_back({op_index, color, out_owner, in_owner, out_owner});
            }
        }
    }

    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;

    // Reference T0: per-node busy time per iteration under the average
    // background load (20 of 40 cores occupied).
    auto& cluster = runtime.cluster();
    for (int n = 0; n < nodes; ++n) cluster.set_cpu_occupancy(n, 20);
    std::vector<double> busy0(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
        busy0[static_cast<std::size_t>(n)] = cluster.proc_busy({n, sim::ProcKind::CPU, 0});
    for (int k = 0; k < 10; ++k) cg.step();
    double t0_ref = 0.0;
    for (int n = 0; n < nodes; ++n) {
        t0_ref = std::max(t0_ref, (cluster.proc_busy({n, sim::ProcKind::CPU, 0}) -
                                   busy0[static_cast<std::size_t>(n)]) /
                                      10.0);
    }
    // Default adaptation rate: β·T0 ≈ 0.1 (giveaway probability ≈ 10% per
    // rebalance for a node running at twice the reference time) — the
    // empirical sweet spot between adaptation speed and migration thrash,
    // and the same order as the paper's β·T0 product.
    const double beta = beta_arg > 0.0 ? beta_arg : 0.1 / t0_ref;

    core::ThermodynamicBalancer balancer(beta, t0_ref, seed ^ 0xB411A9CEULL);
    balancer.set_metrics(&runtime.metrics());
    Rng background(seed);
    std::vector<double> busy_prev(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
        busy_prev[static_cast<std::size_t>(n)] = cluster.proc_busy({n, sim::ProcKind::CPU, 0});

    Fig10Run result;
    for (int it = 0; it < iters; ++it) {
        if (it % 100 == 0) {
            for (int n = 0; n < nodes; ++n) {
                cluster.set_cpu_occupancy(
                    n, static_cast<int>(background.uniform_int(0, 39)));
            }
        }
        const double t_before = runtime.current_time();
        cg.step();
        result.per_iteration.push_back(runtime.current_time() - t_before);

        if (dynamic_balancing && it % 10 == 9) {
            std::vector<double> node_times(static_cast<std::size_t>(nodes));
            for (int n = 0; n < nodes; ++n) {
                const double b = cluster.proc_busy({n, sim::ProcKind::CPU, 0});
                node_times[static_cast<std::size_t>(n)] =
                    (b - busy_prev[static_cast<std::size_t>(n)]) / 10.0;
                busy_prev[static_cast<std::size_t>(n)] = b;
            }
            std::vector<core::Tile> before = tiles;
            result.tiles_moved += balancer.rebalance(tiles, node_times);
            for (std::size_t t = 0; t < tiles.size(); ++t) {
                if (tiles[t].current != before[t].current) {
                    (*table)[tiles[t].task_color] = tiles[t].current;
                    const auto [region, field] =
                        planner.operator_storage(tiles[t].op_index);
                    runtime.move_home(region, field,
                                      runtime.region(region).space().universe(),
                                      tiles[t].current);
                }
            }
        }
    }
    result.total_time =
        std::accumulate(result.per_iteration.begin(), result.per_iteration.end(), 0.0);
    return result;
}

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 32));
    const gidx nx = args.get_int("nx", 4096);
    const gidx ny = args.get_int("ny", 4096);
    const int iters = static_cast<int>(args.get_int("iters", 500));
    const double beta = args.get_double("beta", 0.0);
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2025));

    std::cout << "=== Figure 10: CG under stochastic background load, " << nodes
              << " nodes x 40 cores, " << nx << "x" << ny << " grid, " << 2 * nodes
              << " pieces ===\n"
              << "background occupancy ~ U[0,39], re-drawn every 100 iterations; dynamic "
                 "rebalance every 10 iterations\n\n";

    const Fig10Run stat_run = run(false, nodes, nx, ny, iters, beta, seed);
    const Fig10Run dyn = run(true, nodes, nx, ny, iters, beta, seed);

    kdr::Table table({"iteration", "static ms", "dynamic ms"});
    for (std::size_t i = 0; i < stat_run.per_iteration.size(); i += 25) {
        table.add_row({std::to_string(i), kdr::Table::num(stat_run.per_iteration[i] * 1e3, 3),
                       kdr::Table::num(dyn.per_iteration[i] * 1e3, 3)});
    }
    table.print(std::cout);

    std::cout << "\ntotal static:  " << kdr::Table::num(stat_run.total_time * 1e3, 1) << " ms\n"
              << "total dynamic: " << kdr::Table::num(dyn.total_time * 1e3, 1) << " ms ("
              << dyn.tiles_moved << " tile migrations)\n"
              << "reduction: "
              << kdr::Table::num((1.0 - dyn.total_time / stat_run.total_time) * 100.0, 1)
              << "% (paper: 66%)\n";
    return 0;
}
