/// Planner-operation microbenchmarks (google-benchmark, real host wall
/// time): the functional-mode cost of each Fig 6 operation, including the
/// runtime's dependence analysis, transfer bookkeeping, and kernel
/// execution. This is the per-operation overhead an application pays to run
/// KDRSolvers at test scale on one host.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "stencil/stencil.hpp"

namespace {

using namespace kdr;

struct PlannerBench {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<core::Planner<double>> planner;
    core::VecId w1, w2;

    explicit PlannerBench(gidx n, Color pieces) {
        sim::MachineDesc m = sim::MachineDesc::lassen(2);
        runtime = std::make_unique<rt::Runtime>(m);
        const IndexSpace D = IndexSpace::create(n, "D");
        const rt::RegionId xr = runtime->create_region(D, "x");
        const rt::RegionId br = runtime->create_region(D, "b");
        const rt::FieldId xf = runtime->add_field<double>(xr, "v");
        const rt::FieldId bf = runtime->add_field<double>(br, "v");
        planner = std::make_unique<core::Planner<double>>(*runtime);
        planner->add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner->add_rhs_vector(br, bf, Partition::equal(D, pieces));
        stencil::Spec spec;
        spec.kind = stencil::Kind::D1P3;
        spec.nx = n;
        planner->add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
        w1 = planner->allocate_workspace_vector();
        w2 = planner->allocate_workspace_vector();
        planner->copy(w1, core::Planner<double>::RHS);
    }
};

void BM_Planner_Axpy(benchmark::State& state) {
    PlannerBench b(1 << 16, static_cast<Color>(state.range(0)));
    for (auto _ : state) {
        b.planner->axpy(b.w1, core::make_scalar(0.5), b.w2);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_Planner_Axpy)->Arg(1)->Arg(8)->Arg(64);

void BM_Planner_Dot(benchmark::State& state) {
    PlannerBench b(1 << 16, static_cast<Color>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.planner->dot(b.w1, b.w2).value);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_Planner_Dot)->Arg(1)->Arg(8)->Arg(64);

void BM_Planner_Matmul(benchmark::State& state) {
    PlannerBench b(1 << 16, static_cast<Color>(state.range(0)));
    for (auto _ : state) {
        b.planner->matmul(b.w2, b.w1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3 * (1 << 16));
}
BENCHMARK(BM_Planner_Matmul)->Arg(1)->Arg(8)->Arg(64);

void BM_Planner_CgStep(benchmark::State& state) {
    PlannerBench b(1 << 16, static_cast<Color>(state.range(0)));
    const auto cg_owner = core::make_solver<double>("cg", *b.planner);
    core::Solver<double>& cg = *cg_owner;
    for (auto _ : state) {
        cg.step();
    }
}
BENCHMARK(BM_Planner_CgStep)->Arg(1)->Arg(8)->Arg(64);

} // namespace

BENCHMARK_MAIN();
